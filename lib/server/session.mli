(** Per-connection protocol state machine, socket-agnostic.

    A session owns a read accumulation buffer and a write queue and
    knows nothing about file descriptors: the {!Loop} (or a test)
    {!feed}s it raw bytes and drains {!next_output}. Feeding parses as
    many complete frames as the bytes hold, dispatches each against
    the shared {!context} (executing NFQL through
    {!Nfql.Physical.exec}), and stages the response frames. The
    lifecycle is

    {v open --(protocol error | timeout | shutdown)--> closing
            --(write queue drained)------------------> closed v}

    where {e closing} still flushes the staged reply (the polite
    rejection) before the loop drops the socket.

    Every decoded frame passes the ["server.session.frame"]
    {!Storage.Failpoint} control site, so the crash suite can kill the
    serve path mid-request and assert recovery; an armed [Crash]
    propagates out of {!feed} as [Failpoint.Crashed]. *)

(** Admission-control and robustness knobs (shared with {!Loop}). *)
type config = {
  max_connections : int;  (** accept cap; above it: [Err Overloaded] *)
  max_payload : int;  (** per-frame payload cap in bytes *)
  idle_timeout : float;  (** seconds of silence before reaping *)
  idle_in_txn_timeout : float;
      (** shorter leash for a connection idling {e inside an open
          transaction} — it pins snapshots and write ledgers; reaping
          it rolls the transaction back *)
  request_timeout : float;
      (** wall-clock budget for one request: a partial frame must
          complete, and a script's statements must all start, within
          this many seconds *)
  slow_query_s : float;  (** statements slower than this are logged *)
  slow_log_size : int;  (** slow-query ring-buffer capacity *)
  wal_sync_interval : float;
      (** minimum seconds between group-commit fsyncs; 0 syncs on
          every loop tick that left WAL bytes unsynced *)
  wal_sync_max_batch : int;
      (** force a group sync once this many sessions are waiting on
          withheld acknowledgements, regardless of the interval *)
  cdc_max_buffered : int;
      (** CDC admission budget per subscriber: a session whose queued
          output exceeds this many bytes when a delta arrives is
          evicted ([Err Overloaded]) instead of buffering unboundedly *)
  scrape_interval : float;
      (** seconds between self-scrapes of the metrics registry into
          the history behind the [_metrics] system table *)
  tick_interval : float;
      (** the loop's nominal select timeout; a tick exceeding twice
          this counts as a stall ([loop.stalls_total]) *)
  trace_capacity : int;
      (** span ring size — how many spans recent traces may hold *)
  trace_retain : int;
      (** how many slowest complete traces tail sampling retains (the
          [_traces] system table's depth) *)
  slow_log_file : string option;
      (** append slow-query entries as JSON lines to this file (one
          object per entry, flushed immediately); [None] disables *)
}

val default_config : config
(** 64 connections, 1 MiB frames, 30 s idle (10 s idle-in-transaction),
    10 s requests, 100 ms slow-query threshold, 64 slow-log entries,
    group sync every tick (interval 0) capped at 64 waiters, 1 MiB CDC
    buffering budget, 5 s scrapes, 250 ms ticks, 4096-span ring,
    {!Obs.Retain.default_capacity} retained traces, no slow-log
    file. *)

(** One slow-query log entry. [slow_trace] is the request's trace id
    (0 when tracing was off — nothing to correlate), [slow_hash] an
    MD5 of the statement text for grouping repeats, [slow_ops] the
    executed operator tree's pre-order [(label, rows_out)] profile,
    [slow_plan] an EXPLAIN snapshot for select-carrying statements,
    [slow_est] the planner's estimated vs actual access-path rows for
    the last select the statement ran — a slow query whose estimate
    was badly off points at stale statistics. *)
type slow_entry = {
  slow_at : float;  (** when the statement started (context clock) *)
  slow_text : string;
  slow_seconds : float;
  slow_trace : int;
  slow_hash : string;
  slow_ops : (string * int) list;
  slow_plan : string option;
  slow_est : (float * int) option;
}

(** State shared by every session of one server. *)
type context

val make_context :
  ?config:config ->
  ?metrics:Metrics.t ->
  ?now:(unit -> float) ->
  Nfql.Physical.db ->
  context
(** [now] defaults to [Unix.gettimeofday]; tests inject a fake clock
    to exercise idle reaping and slowloris timeouts deterministically.
    [metrics] defaults to a fresh registry; either way the series a
    monitoring pipeline alerts on (queries, admission, frames, WAL,
    the query-latency histogram, the open-connections gauge) are
    pre-declared so an idle server scrapes complete.

    Also installs the self-monitoring surfaces on [db]: the [_metrics]
    (scraped history), [_slow_queries] (the in-memory ring) and
    [_traces] (tail-sampled slowest traces) system tables, sizes the
    span ring to [trace_capacity] (only when it differs — resizing
    clears it), and opens the [slow_log_file] sink when configured.

    @raise Invalid_argument when [trace_capacity] or [trace_retain] is
    below 1, or [scrape_interval] / [tick_interval] is not positive. *)

val context_metrics : context -> Metrics.t
val context_config : context -> config

val context_now : context -> float
(** The context's clock reading (injected or wall). *)

val context_db : context -> Nfql.Physical.db

val context_hist : context -> Hist.History.t
(** The metrics history the loop scrapes into ([_metrics]). *)

val context_retain : context -> Obs.Retain.t
(** The tail-sampled slow-trace ring ([_traces]). *)

val scrape : context -> now:float -> int
(** Sample every registry series into the history at [now] (the
    context clock's reading, so fake clocks downsample
    deterministically), charging the real wall-clock cost to
    [obs.scrape.seconds] and refreshing the [obs.history_series]
    gauge. Returns the number of series sampled. The loop calls this
    every [scrape_interval]. *)

val close_slow_log : context -> unit
(** Close the [slow_log_file] sink, if open. Idempotent; the loop
    calls it on shutdown. *)

val slow_log : context -> slow_entry list
(** Most recent slow statements, newest last; a ring capped at
    [slow_log_size] entries. *)

val drain : context -> unit
(** Enter drain mode: every subsequent request on any session is
    refused with [Err Shutting_down]. *)

val draining : context -> bool

val shutdown_requested : context -> bool
(** Has any session received a [Shutdown] frame? The loop polls this
    after feeding. *)

val metrics_dump : context -> string
(** What a [Metrics_req] answers: {!Metrics.to_text} plus the
    slow-query log. *)

type t

val create : context -> id:int -> t
val id : t -> int

val feed : t -> bytes -> int -> unit
(** [feed t buf n] appends [buf.[0..n-1]] (just read from the peer)
    and processes every complete frame. Never raises on malformed
    input (the session transitions to closing with a staged [Err]);
    [Failpoint.Crashed] from an armed site does propagate. *)

val next_output : t -> (string * int) option
(** [Some (data, pos)]: unsent bytes are [data.[pos..]]. [None]: the
    write queue is empty. *)

val advance_output : t -> int -> unit
(** Record that [n] more bytes of {!next_output} reached the socket. *)

val want_write : t -> bool
(** True when the session has bytes for the writer — including
    replies currently withheld pending a group sync, so the loop
    neither reaps nor drops a session whose acks are in flight. *)

val awaiting_sync : t -> bool
(** Does this session hold replies whose WAL bytes are not yet
    fsynced? Set when a frame's handling left the database's WAL
    dirty (only possible on [synchronous:false] tables); cleared by
    {!group_sync}. *)

val group_sync : context -> t list -> unit
(** Fsync every table's WAL once and release the withheld replies of
    all waiting sessions — the group-commit point, called by the loop
    at most once per tick. Observes the batch size (sessions covered
    by the one fsync) in [wal.group_commit.batch_size]. No-op when
    nothing is unsynced and nobody is waiting. *)

val dispatch_cdc : context -> t list -> unit
(** Drain the commit-ordered CDC event queue (filled by the executor's
    sink at every commit point that changed a view) and stage one
    [Delta] frame per event on every session subscribed to that view.
    The loop calls this immediately after {!group_sync}, so a delta on
    the wire is always covered by its fsync. A subscriber whose queued
    output exceeds [cdc_max_buffered] is unsubscribed and refused
    [Overloaded] (counted in [cdc.dropped_slow]). *)

val dispatch_repl : context -> t list -> unit
(** Drain the commit-ordered replication queue and stage one
    [Repl_entry] frame per event on every subscribed replica, under
    the same durability gate and slow-subscriber eviction as
    {!dispatch_cdc} ([repl.dropped_slow]) — an entry reaches the wire
    only after the covering table-WAL and manifest fsyncs, so a
    replica can never apply a commit its primary might still lose.
    Called right after {!dispatch_cdc}; drains the queue even with no
    replica subscribed, so a primary without replicas does not
    accumulate events. *)

val set_on_promote : context -> (unit -> unit) -> unit
(** Install the replica-mode detach hook: the [Promote] handler calls
    it (dropping the upstream connection) before clearing the
    database's read-only guard. *)

val check_deadlines : t -> now:float -> [ `Keep | `Reap ]
(** Idle and partial-frame timers. [`Reap]: the loop should close the
    socket after flushing ({!want_write} may newly be true — a
    slowloris gets a polite [Err Timeout] first). *)

val closing : t -> bool
(** The session must be dropped once its output drains. *)

val in_txn : t -> bool
(** Is this connection inside an open transaction? *)

val close : t -> unit
(** Mark closed (socket gone). Idempotent. Rolls back the
    connection's open transaction, if any — a disconnect is an
    implicit ROLLBACK (counted in [txn.auto_rollback]). *)

val closed : t -> bool
val last_activity : t -> float
