(** Typed messages over {!Frame} — the nf2d wire protocol.

    Client-originated: [Ping], [Query] (one NFQL script), [Metrics_req]
    and [Shutdown]. Server-originated: [Pong], per-statement [Stats]
    followed by its result frame ([Rows] for row-returning statements,
    [Done] for acknowledgements), and a terminal [Done] (request
    summary) or [Err]. The response grammar for one [Query] is

    {v (Stats (Rows | Done))* (Done | Err) v}

    — a [Stats] frame announces that one statement's result frame
    follows, so the client needs no lookahead to recognize the
    terminator. [Rows] carries the schema and the canonical NFR tuples
    via {!Storage.Codec}, the same binary encoding the heap pages use.

    {!decode} is total like {!Frame.decode}: any payload that does not
    parse back to a message (unknown type byte, truncated codec data,
    trailing junk) is [`Malformed], never an exception — the fuzz
    suite feeds it random and truncated byte streams. *)

open Relational
open Nfr_core

(** Why a request (or connection) was refused. *)
type err_code =
  | Overloaded  (** connection cap reached; retry later *)
  | Too_large  (** frame exceeded the payload cap *)
  | Malformed_frame  (** undecodable bytes or an unexpected frame *)
  | Timeout  (** the request ran past the wall-clock limit *)
  | Query_failed  (** NFQL parse or evaluation error *)
  | Shutting_down  (** server is draining; no new requests *)
  | Conflict
      (** COMMIT lost first-committer-wins validation; the transaction
          was rolled back — re-run it *)
  | Read_only
      (** the node is a read replica; the message names the primary to
          write to instead *)

val err_code_name : err_code -> string

(** One view's per-commit change set (CDC). [d_seq] is the view's own
    dense delta sequence number (from 1), so a subscriber can detect a
    missed delta after reconnecting; [d_added]/[d_removed] are whole
    canonical NFR tuples of the view's schema. *)
type delta = {
  d_view : string;
  d_seq : int;
  d_schema : Schema.t;
  d_added : Ntuple.t list;
  d_removed : Ntuple.t list;
}

type message =
  | Ping
  | Pong
  | Query of string  (** NFQL source, possibly several statements *)
  | Rows of Schema.t * Ntuple.t list  (** one statement's result rows *)
  | Done of string  (** statement ack, or request terminator *)
  | Err of err_code * string  (** terminal for its request *)
  | Stats of Storage.Stats.t  (** cost of the statement that follows *)
  | Metrics_req  (** admin: ask for the metrics dump *)
  | Metrics of string  (** the dump (text or JSON; see {!Metrics}) *)
  | Metrics_prom_req  (** admin: ask for Prometheus text exposition *)
  | Metrics_prom of string  (** the Prometheus exposition body *)
  | Shutdown  (** admin: drain sessions and stop *)
  | Subscribe of string
      (** client: stream this view's deltas on my connection. Acked
          with [Done]; thereafter one {!Delta} frame per commit that
          changed the view, in commit order, each sent only after the
          covering group-commit fsync. *)
  | Delta of delta  (** server-push: one commit's change to one view *)
  | Repl_subscribe
      (** replica: ship every committed change to this connection.
          Acked with [Done]; the primary first pushes a full-state
          bootstrap (CREATEs and insert loads — no historical log is
          retained), then one {!Repl_entry} per commit in commit
          order, each sent only after the covering group-commit
          fsync. *)
  | Repl_entry of Nfql.Physical.repl_event
      (** primary-push: one committed change. DML ships as per-table
          WAL entries of one commit group; DDL ships structurally. *)
  | Repl_ack of int
      (** replica: applied through this stream sequence — feeds the
          primary's per-replica lag gauge *)
  | Promote
      (** admin (to a replica): detach from the primary and accept
          writes. Acked with [Done]; a no-op error on a primary. *)

val message_name : message -> string
(** Lowercase tag for logs and error messages. *)

val encode : Buffer.t -> message -> unit
(** Append the message as one complete frame. *)

val encode_string : message -> string

type result =
  | Msg of message * int  (** decoded message and bytes consumed *)
  | Need_more
  | Oversized of int
  | Malformed of string

val decode : ?max_payload:int -> Bytes.t -> pos:int -> len:int -> result
(** Decode one message from the unread region. Total: never raises. *)

val decode_message : string -> (message, string) Stdlib.result
(** Decode exactly one whole frame from a string (tests, tools). *)
