open Relational
open Nfr_core

type config = {
  max_connections : int;
  max_payload : int;
  idle_timeout : float;
  idle_in_txn_timeout : float;
  request_timeout : float;
  slow_query_s : float;
  slow_log_size : int;
  wal_sync_interval : float;
  wal_sync_max_batch : int;
  cdc_max_buffered : int;
      (** admission budget per subscriber: a session whose queued
          output exceeds this many bytes when a delta arrives is too
          slow to keep — it is unsubscribed and refused [Overloaded]
          rather than buffering without bound *)
  scrape_interval : float;
      (** seconds between self-scrapes of the registry into the
          metrics history (the [_metrics] system table) *)
  tick_interval : float;
      (** the loop's nominal select timeout; the stall watchdog flags
          any tick that took more than twice this *)
  trace_capacity : int;  (** span ring size ([--trace-capacity]) *)
  trace_retain : int;
      (** slowest complete traces kept by tail sampling — the
          [_traces] system table's depth *)
  slow_log_file : string option;
      (** JSON-lines sink for slow-query entries, appended and flushed
          per entry; [None] keeps the in-memory ring only *)
}

let default_config =
  {
    max_connections = 64;
    max_payload = Frame.max_payload_default;
    idle_timeout = 30.;
    (* A connection sitting inside an open transaction pins that
       transaction's snapshots (and every touched table's write
       ledger), so it gets a much shorter leash than plain idleness. *)
    idle_in_txn_timeout = 10.;
    request_timeout = 10.;
    slow_query_s = 0.1;
    slow_log_size = 64;
    (* Group commit: 0 = fsync on every loop tick that left WAL bytes
       unsynced; raising it trades commit latency for bigger batches.
       The batch cap forces a sync early once that many sessions are
       waiting on their acknowledgements. *)
    wal_sync_interval = 0.;
    wal_sync_max_batch = 64;
    cdc_max_buffered = 1 lsl 20;
    scrape_interval = 5.;
    tick_interval = 0.25;
    trace_capacity = 4096;
    trace_retain = Obs.Retain.default_capacity;
    slow_log_file = None;
  }

(* One slow-query log entry: enough to reproduce and to correlate —
   the trace id links to the span ring, the hash groups repeats of the
   same statement text, the operator profile and plan snapshot say
   where the time plausibly went without re-running anything. *)
type slow_entry = {
  slow_at : float;  (* when the statement started (context clock) *)
  slow_text : string;
  slow_seconds : float;
  slow_trace : int;  (* 0 when no trace scope was open *)
  slow_hash : string;
  slow_ops : (string * int) list;
  slow_plan : string option;
  slow_est : (float * int) option;
      (* planner est vs actual access-path rows — a slow query whose
         estimate was badly off points at stale statistics *)
}

type context = {
  db : Nfql.Physical.db;
  metrics : Metrics.t;
  config : config;
  now : unit -> float;
  slow : slow_entry Queue.t;
  hist : Hist.History.t;
      (** the metrics history — what the loop scrapes into and the
          [_metrics] system table / HISTORY statement read *)
  retain : Obs.Retain.t;
      (** tail-sampled slowest complete traces ([_traces]) *)
  mutable slow_out : out_channel option;
      (** the [--slow-query-log] JSON-lines sink, if any *)
  cdc : Views.Catalog.event Queue.t;
      (** committed view deltas awaiting fan-out — filled by the
          executor's CDC sink in commit order, drained by the loop
          after each group sync (so a delta on the wire is always
          covered by its fsync) *)
  repl : Nfql.Physical.repl_event Queue.t;
      (** committed changes awaiting shipment to subscribed replicas —
          same discipline as [cdc]: filled in commit order by the
          executor's replication sink, drained only once the covering
          WAL (and manifest) bytes are fsynced *)
  mutable on_promote : (unit -> unit) option;
      (** replica mode: detach from the primary (installed by the
          loop); the [Promote] handler calls it before clearing the
          read-only guard *)
  mutable is_draining : bool;
  mutable wants_shutdown : bool;
}

(* Pre-declare every series a monitoring pipeline alerts on, so a
   scrape of a freshly started (still idle) server already exposes
   them at zero instead of 404-by-omission. *)
let declare_series m =
  List.iter (Metrics.declare m)
    [
      "queries.total"; "queries.slow"; "connections.accepted";
      "connections.rejected"; "connections.closed"; "connections.reaped";
      "connections.reaped_in_txn"; "frames.in"; "frames.out";
      "wal.append_total"; "wal.flush_total"; "wal.sync_total";
      "wal.fsync_total" (* deprecated alias of wal.flush_total *);
      "planner.cache_hit";
      "planner.cache_miss"; "planner.analyze"; "planner.auto_analyze";
      "txn.begin"; "txn.commit"; "txn.abort"; "txn.conflict";
      "txn.auto_rollback"; "txn.multi_table_commit"; "pool.hit"; "pool.miss";
      "pool.evict"; "view.deltas_total"; "view.renest_total";
      "view.salvage_total"; "view.orphaned_total"; "view.compositions_total";
      "cdc.subscribe_total"; "cdc.deltas_out"; "cdc.dropped_slow";
      "repl.subscribe_total"; "repl.entries_out"; "repl.entries_applied";
      "repl.dropped_slow"; "repl.apply_errors"; "repl.upstream_errors";
      "repl.upstream_lost";
    ];
  Metrics.declare m "loop.stalls_total";
  Metrics.declare_histogram m "query.seconds";
  Metrics.declare_histogram m "planner.est_error";
  Metrics.declare_histogram m "loop.tick.seconds";
  Metrics.declare_histogram m "obs.scrape.seconds";
  Metrics.declare_histogram m "wal.fsync.seconds";
  Metrics.declare_histogram m "wal.flush.seconds";
  Metrics.declare_histogram m "wal.sync.seconds";
  Metrics.declare_histogram m "wal.group_commit.batch_size";
  Metrics.set_gauge m "connections.open" 0.;
  if Metrics.gauge m "wal.bytes_unsynced" = 0. then
    Metrics.set_gauge m "wal.bytes_unsynced" 0.;
  if Metrics.gauge m "txn.active" = 0. then Metrics.set_gauge m "txn.active" 0.;
  if Metrics.gauge m "cdc.subscribers" = 0. then
    Metrics.set_gauge m "cdc.subscribers" 0.;
  if Metrics.gauge m "repl.replicas" = 0. then
    Metrics.set_gauge m "repl.replicas" 0.;
  (* Exposed as nf2_replica_lag_seconds — the replica's distance behind
     its primary's emission clock, refreshed per applied entry. *)
  if Metrics.gauge m "replica.lag_seconds" = 0. then
    Metrics.set_gauge m "replica.lag_seconds" 0.;
  if Metrics.gauge m "loop.lag" = 0. then Metrics.set_gauge m "loop.lag" 0.;
  if Metrics.gauge m "obs.history_series" = 0. then
    Metrics.set_gauge m "obs.history_series" 0.

(* The [_slow_queries] system table: the in-memory ring as a canonical
   NFR, rebuilt per statement (the ring is small — [slow_log_size]). *)
let slow_schema =
  Schema.of_names
    [
      ("At", Value.Tfloat); ("Seconds", Value.Tfloat); ("Trace", Value.Tint);
      ("Hash", Value.Tstring); ("Statement", Value.Tstring);
    ]

let slow_order = Schema.attributes slow_schema

let slow_queries_nfr slow =
  let flat =
    Queue.fold
      (fun acc e ->
        Nfr.add acc
          (Ntuple.of_tuple
             (Tuple.make slow_schema
                [
                  Value.of_float e.slow_at; Value.of_float e.slow_seconds;
                  Value.of_int e.slow_trace; Value.of_string e.slow_hash;
                  Value.of_string e.slow_text;
                ])))
      (Nfr.empty slow_schema) slow
  in
  (slow_order, Nest.canonicalize flat slow_order)

(* The [_traces] system table: one row per span of every retained
   trace, the root's identity and duration repeated so a WHERE over
   [Root]/[RootS] selects whole trees. *)
let traces_schema =
  Schema.of_names
    [
      ("Trace", Value.Tint); ("Root", Value.Tstring); ("RootS", Value.Tfloat);
      ("Span", Value.Tint); ("Parent", Value.Tint); ("Event", Value.Tstring);
      ("Label", Value.Tstring); ("Seconds", Value.Tfloat); ("Rows", Value.Tint);
    ]

let traces_order = Schema.attributes traces_schema

let traces_nfr retain =
  let flat =
    List.fold_left
      (fun acc (trace : Obs.Retain.trace) ->
        List.fold_left
          (fun acc (sp : Obs.Span.t) ->
            Nfr.add acc
              (Ntuple.of_tuple
                 (Tuple.make traces_schema
                    [
                      Value.of_int trace.Obs.Retain.trace_id;
                      Value.of_string trace.Obs.Retain.root_label;
                      Value.of_float trace.Obs.Retain.root_s;
                      Value.of_int sp.Obs.Span.id;
                      Value.of_int sp.Obs.Span.parent;
                      Value.of_string (Obs.Span.event_name sp.Obs.Span.event);
                      Value.of_string sp.Obs.Span.label;
                      Value.of_float (Obs.Span.busy sp);
                      Value.of_int sp.Obs.Span.rows;
                    ])))
          acc trace.Obs.Retain.spans)
      (Nfr.empty traces_schema)
      (Obs.Retain.snapshot retain)
  in
  (traces_order, Nest.canonicalize flat traces_order)

let make_context ?(config = default_config) ?metrics ?now db =
  if config.trace_capacity < 1 then
    invalid_arg "Session.make_context: trace_capacity must be at least 1";
  if config.trace_retain < 1 then
    invalid_arg "Session.make_context: trace_retain must be at least 1";
  if config.scrape_interval <= 0. then
    invalid_arg "Session.make_context: scrape_interval must be positive";
  if config.tick_interval <= 0. then
    invalid_arg "Session.make_context: tick_interval must be positive";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  declare_series metrics;
  (* Resizing clears the span ring, so only touch it when the config
     actually asks for a different capacity. *)
  if Obs.Span.capacity () <> config.trace_capacity then
    Obs.Span.set_capacity config.trace_capacity;
  let ctx =
    {
      db;
      metrics;
      config;
      now = (match now with Some f -> f | None -> Unix.gettimeofday);
      slow = Queue.create ();
      hist = Hist.History.create ();
      retain = Obs.Retain.create ~capacity:config.trace_retain ();
      slow_out =
        Option.map
          (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
          config.slow_log_file;
      cdc = Queue.create ();
      repl = Queue.create ();
      on_promote = None;
      is_draining = false;
      wants_shutdown = false;
    }
  in
  Nfql.Physical.set_cdc_sink db (fun event -> Queue.push event ctx.cdc);
  Nfql.Physical.set_repl_sink db (fun event -> Queue.push event ctx.repl);
  Nfql.Physical.register_system_table db "_metrics" (fun () ->
      (Hist.History.order, Hist.History.nfr ctx.hist));
  Nfql.Physical.register_system_table db "_slow_queries" (fun () ->
      slow_queries_nfr ctx.slow);
  Nfql.Physical.register_system_table db "_traces" (fun () ->
      traces_nfr ctx.retain);
  ctx

let set_on_promote ctx f = ctx.on_promote <- Some f
let context_metrics ctx = ctx.metrics
let context_config ctx = ctx.config
let context_now ctx = ctx.now ()
let context_db ctx = ctx.db
let context_hist ctx = ctx.hist
let context_retain ctx = ctx.retain

(* One self-scrape: sample every registry series into the history at
   the context clock's [now], charging the real wall-clock cost to
   [obs.scrape.seconds] and refreshing the series-count gauge. *)
let scrape ctx ~now =
  let started = Unix.gettimeofday () in
  let sampled = Hist.History.scrape ctx.hist ctx.metrics ~now in
  Metrics.observe ctx.metrics "obs.scrape.seconds"
    (Unix.gettimeofday () -. started);
  Metrics.set_gauge ctx.metrics "obs.history_series"
    (float_of_int (Hist.History.series_count ctx.hist));
  sampled

let close_slow_log ctx =
  match ctx.slow_out with
  | None -> ()
  | Some out ->
    ctx.slow_out <- None;
    (try close_out out with Sys_error _ -> ())

let slow_log ctx = List.of_seq (Queue.to_seq ctx.slow)
let drain ctx = ctx.is_draining <- true
let draining ctx = ctx.is_draining
let shutdown_requested ctx = ctx.wants_shutdown

let json_escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

(* One slow entry as a JSON line — the [--slow-query-log] sink's
   format. Kept flat and self-describing so `jq` needs no schema. *)
let slow_entry_json entry =
  let ops =
    String.concat ","
      (List.map
         (fun (label, rows) ->
           Printf.sprintf "{\"op\":\"%s\",\"rows\":%d}" (json_escape label) rows)
         entry.slow_ops)
  in
  let est =
    match entry.slow_est with
    | None -> ""
    | Some (est, actual) ->
      Printf.sprintf ",\"est_rows\":%.1f,\"actual_rows\":%d" est actual
  in
  Printf.sprintf
    "{\"at\":%.6f,\"seconds\":%.6f,\"trace\":%d,\"hash\":\"%s\",\"statement\":\"%s\",\"ops\":[%s]%s}"
    entry.slow_at entry.slow_seconds entry.slow_trace
    (json_escape entry.slow_hash)
    (json_escape entry.slow_text)
    ops est

let note_slow ctx entry =
  Metrics.incr ctx.metrics "queries.slow";
  Queue.push entry ctx.slow;
  while Queue.length ctx.slow > ctx.config.slow_log_size do
    ignore (Queue.pop ctx.slow)
  done;
  match ctx.slow_out with
  | None -> ()
  | Some out ->
    (* Flush per entry: the sink exists to be tailed while the server
       is stuck, so buffering until exit would defeat it. *)
    (try
       output_string out (slow_entry_json entry);
       output_char out '\n';
       flush out
     with Sys_error _ -> ())

let render_slow_entry buffer entry =
  Buffer.add_string buffer
    (Printf.sprintf "  %.6fs  trace=%d hash=%s  %s\n" entry.slow_seconds
       entry.slow_trace
       (String.sub entry.slow_hash 0 (min 12 (String.length entry.slow_hash)))
       entry.slow_text);
  (match entry.slow_est with
  | None -> ()
  | Some (est, actual) ->
    Buffer.add_string buffer
      (Printf.sprintf "            est rows: %.1f, actual: %d\n" est actual));
  (match entry.slow_ops with
  | [] -> ()
  | ops ->
    Buffer.add_string buffer
      (Printf.sprintf "            ops: %s\n"
         (String.concat "; "
            (List.map (fun (label, rows) -> Printf.sprintf "%s=%d" label rows) ops))));
  match entry.slow_plan with
  | None -> ()
  | Some plan ->
    String.split_on_char '\n' plan
    |> List.iter (fun line ->
           Buffer.add_string buffer (Printf.sprintf "            | %s\n" line))

let metrics_dump ctx =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer (Metrics.to_text ctx.metrics);
  if not (Queue.is_empty ctx.slow) then begin
    Buffer.add_string buffer "slow queries (ring of last, newest last):\n";
    Queue.iter (render_slow_entry buffer) ctx.slow
  end;
  Buffer.contents buffer

type state =
  | Open
  | Closing  (** flush staged output, then drop *)
  | Closed

type t = {
  ctx : context;
  session_id : int;
  psession : Nfql.Physical.session;
      (** this connection's executor session — carries its open
          transaction across requests *)
  mutable rbuf : Bytes.t;
  mutable rlen : int;
  staged : Buffer.t;  (** frames not yet handed to the writer *)
  held : Buffer.t;
      (** replies covering WAL bytes not yet fsynced — withheld from
          the writer until the loop's next group {!group_sync} *)
  mutable awaiting_sync : bool;
  mutable pending : string;  (** frame bytes currently being written *)
  mutable pending_pos : int;
  mutable state : state;
  mutable last_activity_at : float;
  mutable frame_started_at : float option;
      (** when the current partial frame began arriving *)
  mutable subs : string list;
      (** views this connection subscribed to (CDC) — newest first *)
  mutable repl_sub : bool;
      (** this connection is a subscribed replica: it receives every
          committed change as [Repl_entry] frames *)
  mutable repl_acked : int;
      (** highest stream sequence the replica has acknowledged *)
}

let create ctx ~id =
  {
    ctx;
    session_id = id;
    psession = Nfql.Physical.session ctx.db;
    rbuf = Bytes.create 4096;
    rlen = 0;
    staged = Buffer.create 256;
    held = Buffer.create 64;
    awaiting_sync = false;
    pending = "";
    pending_pos = 0;
    state = Open;
    last_activity_at = ctx.now ();
    frame_started_at = None;
    subs = [];
    repl_sub = false;
    repl_acked = 0;
  }

let id t = t.session_id
let closing t = t.state = Closing
let closed t = t.state = Closed
let in_txn t = Nfql.Physical.in_txn t.psession

(* Closing a session mid-transaction discards the transaction — the
   disconnect is the implicit ROLLBACK (buffered writes never touched
   the shared tables, so there is nothing else to undo). *)
(* Dropping the connection is also the implicit unsubscribe: the
   subscriber gauge must not count dead sessions. *)
let unsubscribe_all t =
  if t.subs <> [] then begin
    Metrics.add_gauge t.ctx.metrics "cdc.subscribers"
      (-.float_of_int (List.length t.subs));
    t.subs <- []
  end;
  if t.repl_sub then begin
    Metrics.add_gauge t.ctx.metrics "repl.replicas" (-1.);
    t.repl_sub <- false
  end

let close t =
  if t.state <> Closed then begin
    t.state <- Closed;
    unsubscribe_all t;
    if Nfql.Physical.rollback_if_open t.psession then begin
      Metrics.incr t.ctx.metrics "txn.auto_rollback";
      Metrics.incr t.ctx.metrics "txn.abort";
      Metrics.add_gauge t.ctx.metrics "txn.active" (-1.)
    end
  end

let last_activity t = t.last_activity_at

(* ------------------------------------------------------------------ *)
(* Output queue                                                        *)
(* ------------------------------------------------------------------ *)

let send t message =
  let before = Buffer.length t.staged in
  (match Obs.Span.current_trace () with
  | None -> Protocol.encode t.staged message
  | Some _ ->
    Obs.Span.with_span Obs.Span.Frame_tx (Protocol.message_name message)
      (fun span ->
        Protocol.encode t.staged message;
        Obs.Span.add_bytes span (Buffer.length t.staged - before)));
  Metrics.incr t.ctx.metrics "frames.out";
  Metrics.add t.ctx.metrics "bytes.out" (Buffer.length t.staged - before)

let next_output t =
  if t.pending_pos >= String.length t.pending then begin
    t.pending <- Buffer.contents t.staged;
    t.pending_pos <- 0;
    Buffer.clear t.staged
  end;
  if t.pending_pos >= String.length t.pending then None
  else Some (t.pending, t.pending_pos)

let advance_output t n =
  t.pending_pos <- t.pending_pos + n;
  t.last_activity_at <- t.ctx.now ()

let want_write t =
  t.pending_pos < String.length t.pending
  || Buffer.length t.staged > 0
  (* Held acknowledgements count: the session still has bytes to
     deliver (after the next group sync releases them), so neither the
     idle reaper nor a draining shutdown may drop it yet. *)
  || Buffer.length t.held > 0

(* ------------------------------------------------------------------ *)
(* Group commit                                                        *)
(* ------------------------------------------------------------------ *)

let awaiting_sync t = t.awaiting_sync

let release_held t =
  if t.awaiting_sync then begin
    Buffer.add_buffer t.staged t.held;
    Buffer.clear t.held;
    t.awaiting_sync <- false
  end

(* One fsync covering every statement any session handled since the
   last call. Acknowledgements withheld by those sessions are released
   only after the fsync returns, so a commit acked on the wire is
   durable. A degraded WAL (disk error mid-sync) still releases the
   acks — the writes are applied in memory and the table has already
   been marked non-durable — but the error is counted so operators can
   alert on it. *)
let group_sync ctx sessions =
  let waiting = List.filter (fun s -> s.awaiting_sync) sessions in
  if waiting <> [] || Nfql.Physical.wal_unsynced ctx.db > 0 then begin
    (try Nfql.Physical.sync_wal ctx.db
     with
    | Storage.Failpoint.Crashed _ as crash -> raise crash
    | Storage.Storage_error.Error _ -> Metrics.incr ctx.metrics "wal.sync_errors");
    if waiting <> [] then
      Metrics.observe ctx.metrics "wal.group_commit.batch_size"
        (float_of_int (List.length waiting));
    List.iter release_held waiting
  end

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

let reply_of_result = function
  | Nfql.Eval.Done text -> Protocol.Done text
  | Nfql.Eval.Rows nfr -> Protocol.Rows (Nfr.schema nfr, Nfr.ntuples nfr)

(* EXPLAIN snapshot for the slow log: only for statements that carry a
   select, and only when they were actually slow. *)
let plan_snapshot db = function
  | Nfql.Ast.Select s | Nfql.Ast.Explain s | Nfql.Ast.Explain_analyze s ->
    Some (Nfql.Physical.explain db s)
  | Nfql.Ast.Trace (Nfql.Ast.Select s) -> Some (Nfql.Physical.explain db s)
  | Nfql.Ast.Create _ | Nfql.Ast.Drop _ | Nfql.Ast.Create_view _
  | Nfql.Ast.Drop_view _ | Nfql.Ast.Insert _ | Nfql.Ast.Delete_values _
  | Nfql.Ast.Delete_where _ | Nfql.Ast.Update_set _ | Nfql.Ast.Select_count _
  | Nfql.Ast.Analyze _ | Nfql.Ast.Trace _ | Nfql.Ast.Show _ | Nfql.Ast.History _
  | Nfql.Ast.Begin | Nfql.Ast.Commit | Nfql.Ast.Rollback ->
    None

let run_query t source =
  let ctx = t.ctx in
  let parse source =
    Obs.Span.with_span Obs.Span.Parse "parse-script" @@ fun parse_span ->
    Obs.Span.add_bytes parse_span (String.length source);
    Nfql.Parser.parse_script source
  in
  match parse source with
  | exception Nfql.Parser.Parse_error (message, offset) ->
    Metrics.incr ctx.metrics "errors.query";
    send t
      (Protocol.Err
         ( Protocol.Query_failed,
           Printf.sprintf "parse error at offset %d: %s" offset message ))
  | exception Nfql.Lexer.Lex_error (message, offset) ->
    Metrics.incr ctx.metrics "errors.query";
    send t
      (Protocol.Err
         ( Protocol.Query_failed,
           Printf.sprintf "lex error at offset %d: %s" offset message ))
  | statements ->
    let deadline = ctx.now () +. ctx.config.request_timeout in
    let rec execute completed = function
      | [] ->
        send t (Protocol.Done (Printf.sprintf "ok: %d statement(s)" completed))
      | statement :: rest ->
        if ctx.now () > deadline then begin
          Metrics.incr ctx.metrics "errors.timeout";
          send t
            (Protocol.Err
               ( Protocol.Timeout,
                 Printf.sprintf
                   "request exceeded %.3fs; %d of %d statement(s) ran"
                   ctx.config.request_timeout completed
                   (List.length statements) ))
        end
        else begin
          Metrics.incr ctx.metrics "queries.total";
          Metrics.incr ctx.metrics
            ("queries." ^ Nfql.Ast.statement_verb statement);
          let started = ctx.now () in
          (* Mirror transaction transitions into this server's own
             registry, so the METRICS ledger balances even when the
             context was built over a private registry (the executor's
             counters live in the process-global one). *)
          let was_in_txn = Nfql.Physical.in_txn t.psession in
          let note_txn_transition () =
            match (was_in_txn, Nfql.Physical.in_txn t.psession) with
            | false, true ->
              Metrics.incr ctx.metrics "txn.begin";
              Metrics.add_gauge ctx.metrics "txn.active" 1.
            | true, false ->
              (match statement with
              | Nfql.Ast.Commit -> Metrics.incr ctx.metrics "txn.commit"
              | _ -> Metrics.incr ctx.metrics "txn.abort");
              Metrics.add_gauge ctx.metrics "txn.active" (-1.)
            | _ -> ()
          in
          match Nfql.Physical.exec_session t.psession statement with
          | result, stats ->
            note_txn_transition ();
            let elapsed = ctx.now () -. started in
            Metrics.observe ctx.metrics "query.seconds" elapsed;
            if elapsed > ctx.config.slow_query_s then begin
              let text = Format.asprintf "%a" Nfql.Ast.pp_statement statement in
              note_slow ctx
                {
                  slow_at = started;
                  slow_text = text;
                  slow_seconds = elapsed;
                  slow_trace =
                    Option.value ~default:0 (Obs.Span.current_trace ());
                  slow_hash = Digest.to_hex (Digest.string text);
                  slow_ops = Nfql.Physical.last_profile ctx.db;
                  slow_plan = plan_snapshot ctx.db statement;
                  slow_est = Nfql.Physical.last_estimate ctx.db;
                }
            end;
            send t (Protocol.Stats stats);
            send t (reply_of_result result);
            execute (completed + 1) rest
          | exception Nfql.Eval.Eval_error message ->
            Metrics.incr ctx.metrics "errors.query";
            send t (Protocol.Err (Protocol.Query_failed, message))
          | exception Nfql.Physical.Read_only primary ->
            (* Typed refusal: the client should redirect its writes to
               the primary this payload names. The session stays open —
               reads are still welcome here. *)
            Metrics.incr ctx.metrics "errors.read_only";
            send t
              (Protocol.Err
                 ( Protocol.Read_only,
                   Printf.sprintf "read-only replica of %s" primary ))
          | exception Nfql.Physical.Conflict message ->
            (* The transaction is already rolled back; the typed code
               tells the client a plain retry may succeed. *)
            Metrics.incr ctx.metrics "txn.conflict";
            Metrics.incr ctx.metrics "txn.abort";
            Metrics.add_gauge ctx.metrics "txn.active" (-1.);
            Metrics.incr ctx.metrics "errors.conflict";
            send t (Protocol.Err (Protocol.Conflict, message))
          | exception Storage.Storage_error.Error err ->
            Metrics.incr ctx.metrics "errors.query";
            send t
              (Protocol.Err
                 (Protocol.Query_failed, Storage.Storage_error.to_string err))
          | exception (Storage.Failpoint.Crashed _ as crash) ->
            (* Fault injection simulates process death: let it out. *)
            raise crash
          | exception exn ->
            Metrics.incr ctx.metrics "errors.query";
            send t (Protocol.Err (Protocol.Query_failed, Printexc.to_string exn))
        end
    in
    execute 0 statements

let refuse t code reason =
  Metrics.incr t.ctx.metrics
    (match code with
    | Protocol.Shutting_down -> "errors.shutting_down"
    | Protocol.Timeout -> "errors.timeout"
    | Protocol.Too_large -> "errors.too_large"
    | Protocol.Malformed_frame -> "errors.malformed"
    | Protocol.Overloaded -> "errors.overloaded"
    | Protocol.Query_failed -> "errors.query"
    | Protocol.Conflict -> "errors.conflict"
    | Protocol.Read_only -> "errors.read_only");
  send t (Protocol.Err (code, reason));
  t.state <- Closing

let handle t message =
  let ctx = t.ctx in
  Storage.Failpoint.hit "server.session.frame";
  if ctx.is_draining then
    refuse t Protocol.Shutting_down "server is draining"
  else
    match message with
    | Protocol.Ping -> send t Protocol.Pong
    | Protocol.Query source -> run_query t source
    | Protocol.Metrics_req -> send t (Protocol.Metrics (metrics_dump ctx))
    | Protocol.Metrics_prom_req ->
      send t (Protocol.Metrics_prom (Metrics.to_prometheus ctx.metrics))
    | Protocol.Shutdown ->
      ctx.wants_shutdown <- true;
      send t (Protocol.Done "shutting down")
    | Protocol.Subscribe view ->
      if not (Nfql.Physical.is_view ctx.db view) then begin
        Metrics.incr ctx.metrics "errors.query";
        send t
          (Protocol.Err
             (Protocol.Query_failed, Printf.sprintf "unknown view %s" view))
      end
      else if List.mem view t.subs then
        send t (Protocol.Done (Printf.sprintf "already subscribed to %s" view))
      else begin
        t.subs <- view :: t.subs;
        Metrics.incr ctx.metrics "cdc.subscribe_total";
        Metrics.add_gauge ctx.metrics "cdc.subscribers" 1.;
        send t (Protocol.Done (Printf.sprintf "subscribed to view %s" view))
      end
    | Protocol.Repl_subscribe ->
      if Nfql.Physical.read_only ctx.db <> None then begin
        Metrics.incr ctx.metrics "errors.query";
        send t
          (Protocol.Err
             ( Protocol.Query_failed,
               "cascading replication is not supported: subscribe to the \
                primary" ))
      end
      else if t.repl_sub then
        send t (Protocol.Done "already subscribed to the replication stream")
      else begin
        t.repl_sub <- true;
        Metrics.incr ctx.metrics "repl.subscribe_total";
        Metrics.add_gauge ctx.metrics "repl.replicas" 1.;
        send t (Protocol.Done "subscribed to the replication stream");
        (* Full-state bootstrap: no historical log is retained, so the
           stream starts from a synthesized snapshot. Staged here, it
           still rides the durability gate — if another session's
           write is awaiting its fsync, these frames are held with the
           rest of this tick's output. *)
        List.iter
          (fun event ->
            Metrics.incr ctx.metrics "repl.entries_out";
            send t (Protocol.Repl_entry event))
          (Nfql.Physical.repl_bootstrap ctx.db)
      end
    | Protocol.Repl_ack seq ->
      (* Pure bookkeeping; acks get no reply. *)
      if t.repl_sub then t.repl_acked <- max t.repl_acked seq
    | Protocol.Promote -> (
      match Nfql.Physical.read_only ctx.db with
      | None ->
        Metrics.incr ctx.metrics "errors.query";
        send t
          (Protocol.Err
             (Protocol.Query_failed, "not a replica: writes are already open"))
      | Some primary ->
        (match ctx.on_promote with Some detach -> detach () | None -> ());
        Nfql.Physical.set_read_only ctx.db None;
        send t
          (Protocol.Done
             (Printf.sprintf "promoted: detached from %s, accepting writes"
                primary)))
    | Protocol.Pong | Protocol.Rows _ | Protocol.Done _ | Protocol.Err _
    | Protocol.Stats _ | Protocol.Metrics _ | Protocol.Metrics_prom _
    | Protocol.Delta _ | Protocol.Repl_entry _ ->
      refuse t Protocol.Malformed_frame
        (Printf.sprintf "unexpected %s frame from client"
           (Protocol.message_name message))

(* ------------------------------------------------------------------ *)
(* CDC fan-out                                                         *)
(* ------------------------------------------------------------------ *)

let queued_output_bytes t =
  String.length t.pending - t.pending_pos
  + Buffer.length t.staged
  + Buffer.length t.held

let deliver_cdc t (event : Views.Catalog.event) =
  if t.state = Open && List.mem event.Views.Catalog.view t.subs then begin
    if queued_output_bytes t > t.ctx.config.cdc_max_buffered then begin
      (* Admission control: the subscriber is not draining its socket
         as fast as commits produce deltas. Buffering without bound
         would let one slow reader exhaust the server, and silently
         skipping a delta would corrupt its stream (the seq gap is only
         detectable, not recoverable, client-side) — so evict it. *)
      Metrics.incr t.ctx.metrics "cdc.dropped_slow";
      unsubscribe_all t;
      refuse t Protocol.Overloaded
        (Printf.sprintf
           "subscriber too slow: %d bytes queued exceeds the %d-byte budget"
           (queued_output_bytes t) t.ctx.config.cdc_max_buffered)
    end
    else begin
      Metrics.incr t.ctx.metrics "cdc.deltas_out";
      send t
        (Protocol.Delta
           {
             Protocol.d_view = event.Views.Catalog.view;
             d_seq = event.Views.Catalog.seq;
             d_schema = event.Views.Catalog.schema;
             d_added = event.Views.Catalog.added;
             d_removed = event.Views.Catalog.removed;
           })
    end
  end

(* Drain the commit-ordered event queue to every subscribed session.
   The loop calls this right after {!group_sync}, so every delta frame
   a client sees describes WAL bytes already fsynced; all subscribers
   of a view observe the same deltas in the same order because the
   queue is FIFO and delivery is synchronous. *)
let dispatch_cdc ctx sessions =
  (* Durability gate: never announce a delta whose covering WAL bytes
     are still unsynced — if the interval-paced group sync skipped this
     tick, the events simply wait in the queue for the next one. *)
  if Nfql.Physical.wal_unsynced ctx.db = 0 then
    while not (Queue.is_empty ctx.cdc) do
      let event = Queue.pop ctx.cdc in
      List.iter (fun t -> deliver_cdc t event) sessions
    done

(* ------------------------------------------------------------------ *)
(* Replication fan-out                                                 *)
(* ------------------------------------------------------------------ *)

let deliver_repl t event =
  if t.state = Open && t.repl_sub then begin
    if queued_output_bytes t > t.ctx.config.cdc_max_buffered then begin
      (* Same admission control as CDC: a replica that cannot drain its
         socket would otherwise buffer the primary into the ground, and
         a silently skipped entry would corrupt its state — evict it;
         it can resubscribe and re-bootstrap. *)
      Metrics.incr t.ctx.metrics "repl.dropped_slow";
      unsubscribe_all t;
      refuse t Protocol.Overloaded
        (Printf.sprintf
           "replica too slow: %d bytes queued exceeds the %d-byte budget"
           (queued_output_bytes t) t.ctx.config.cdc_max_buffered)
    end
    else begin
      Metrics.incr t.ctx.metrics "repl.entries_out";
      send t (Protocol.Repl_entry event)
    end
  end

(* Drain the commit-ordered replication queue to every subscribed
   replica, under the same durability gate as CDC: an entry reaches
   the wire only after the covering table-WAL and manifest fsyncs, so
   a replica can never apply a commit its primary might still lose. *)
let dispatch_repl ctx sessions =
  if Nfql.Physical.wal_unsynced ctx.db = 0 then
    while not (Queue.is_empty ctx.repl) do
      let event = Queue.pop ctx.repl in
      List.iter (fun t -> deliver_repl t event) sessions
    done

(* ------------------------------------------------------------------ *)
(* Input buffering and frame parsing                                   *)
(* ------------------------------------------------------------------ *)

let ensure_capacity t extra =
  let needed = t.rlen + extra in
  if needed > Bytes.length t.rbuf then begin
    let grown = Bytes.create (max needed (2 * Bytes.length t.rbuf)) in
    Bytes.blit t.rbuf 0 grown 0 t.rlen;
    t.rbuf <- grown
  end

let consume t n =
  if n > 0 then begin
    Bytes.blit t.rbuf n t.rbuf 0 (t.rlen - n);
    t.rlen <- t.rlen - n
  end

let rec parse_frames t =
  if t.state = Open && t.rlen > 0 then
    let decode_started = Obs.Span.now () in
    match
      Protocol.decode ~max_payload:t.ctx.config.max_payload t.rbuf ~pos:0
        ~len:t.rlen
    with
    | Protocol.Need_more -> ()
    | Protocol.Msg (message, consumed_bytes) ->
      Metrics.incr t.ctx.metrics "frames.in";
      consume t consumed_bytes;
      let stage_mark = Buffer.length t.staged in
      (* When tracing is on, every request gets its own trace rooted at
         a Frame_rx span: decode time is pre-seeded into the span's
         busy clock ({!Obs.Span.with_span} adds its own elapsed on
         top), and everything the handler does — parse, statement,
         operators, WAL — nests beneath it. *)
      (if Obs.Span.enabled () then
         Obs.Span.in_trace (fun trace ->
             Obs.Span.with_span Obs.Span.Frame_rx
               (Protocol.message_name message) (fun span ->
                 Obs.Span.add_bytes span consumed_bytes;
                 Obs.Span.add_busy span (Obs.Span.now () -. decode_started);
                 handle t message);
             (* Tail sampling: the request is complete, so its rank is
                known — offer the whole tree to the slow-trace ring. *)
             Obs.Retain.offer t.ctx.retain (Obs.Span.spans_of_trace trace))
       else handle t message);
      (* Durability gate: if handling this frame left WAL bytes
         unsynced (a write on a [synchronous:false] table), its reply
         must not reach the wire before those bytes are fsynced. Move
         the reply to [held]; the loop's next {!group_sync} releases
         it. Once a session is awaiting, later replies are held too so
         frame order is preserved. *)
      if t.awaiting_sync || Nfql.Physical.wal_unsynced t.ctx.db > 0 then begin
        let staged_len = Buffer.length t.staged in
        if staged_len > stage_mark then begin
          Buffer.add_string t.held
            (Buffer.sub t.staged stage_mark (staged_len - stage_mark));
          Buffer.truncate t.staged stage_mark
        end;
        t.awaiting_sync <- true
      end;
      parse_frames t
    | Protocol.Oversized n ->
      refuse t Protocol.Too_large
        (Printf.sprintf "frame payload of %d bytes exceeds the %d-byte cap" n
           t.ctx.config.max_payload)
    | Protocol.Malformed reason ->
      refuse t Protocol.Malformed_frame reason

let feed t buf n =
  if t.state = Open && n > 0 then begin
    ensure_capacity t n;
    Bytes.blit buf 0 t.rbuf t.rlen n;
    t.rlen <- t.rlen + n;
    Metrics.add t.ctx.metrics "bytes.in" n;
    t.last_activity_at <- t.ctx.now ();
    if t.frame_started_at = None then t.frame_started_at <- Some t.last_activity_at;
    parse_frames t;
    if t.rlen = 0 then t.frame_started_at <- None
  end

let check_deadlines t ~now =
  if t.state <> Open then `Keep
  else
    match t.frame_started_at with
    | Some started when now -. started > t.ctx.config.request_timeout ->
      (* Slowloris: the frame has been dribbling in for too long. *)
      refuse t Protocol.Timeout
        (Printf.sprintf "frame did not complete within %.3fs"
           t.ctx.config.request_timeout);
      `Reap
    | _ ->
      if
        in_txn t
        && now -. t.last_activity_at > t.ctx.config.idle_in_txn_timeout
        && not (want_write t)
      then begin
        (* Idle in transaction: the polite rejection tells the client
           its transaction is gone; the close that follows rolls it
           back. *)
        Metrics.incr t.ctx.metrics "connections.reaped_in_txn";
        refuse t Protocol.Timeout
          (Printf.sprintf
             "idle in transaction longer than %.3fs; transaction rolled back"
             t.ctx.config.idle_in_txn_timeout);
        `Reap
      end
      else if
        now -. t.last_activity_at > t.ctx.config.idle_timeout
        && not (want_write t)
      then begin
        Metrics.incr t.ctx.metrics "connections.reaped";
        t.state <- Closing;
        `Reap
      end
      else `Keep
