(** Live server metrics: named counters and latency histograms.

    A registry is a process-wide (or per-loop, in tests) bag of
    monotonic counters ([frames.in], [queries.select], ...) and
    log-bucketed histograms of seconds ([query.seconds]), cheap enough
    to update on every frame. The server answers a [Metrics_req] frame
    with {!to_text}; {!to_json} shares the flat-object encoding of
    {!Storage.Stats.to_json} so EXPLAIN ANALYZE costs, the METRICS
    dump and the network bench report all render one machine-readable
    format.

    Histograms bucket by powers of two starting at 1 µs, so quantile
    estimates carry at most a 2x bucket-width error — plenty for p50 /
    p95 / p99 service-time reporting, with exact [count], [sum] and
    [max] kept alongside. *)

type t

val create : unit -> t

val global : t
(** The default process-wide registry (the CLI server uses it). *)

val incr : t -> string -> unit
(** Add 1 to a counter, creating it at 0 first. *)

val add : t -> string -> int -> unit

val get : t -> string -> int
(** Current value; 0 for a counter never touched. *)

val observe : t -> string -> float -> unit
(** Record one duration (seconds) in a histogram. Negative samples
    clamp to 0. *)

(** Summary of one histogram. Quantiles are bucket upper bounds
    (within 2x of the true value); [max] and [sum] are exact. *)
type summary = {
  count : int;
  sum : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : t -> string -> summary option
(** [None] when the histogram has no observations. *)

val quantile : float list -> float -> float
(** [quantile samples q] — exact quantile of a raw sample list (the
    bench's client-side latencies). [0.] on an empty list. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val to_text : t -> string
(** Human-readable dump: one [name value] line per counter, one
    summary line per histogram. *)

val to_json : t -> string
(** [{"counters":{...},"histograms":{"name":{"count":..,...}}}]. *)

val reset : t -> unit
