(* Buckets are powers of two over 1 µs: bucket [i] counts samples in
   (2^(i-1) µs, 2^i µs]; bucket 0 holds everything at or under 1 µs.
   40 buckets reach ~6.4 days, far past any request timeout. *)
let bucket_count = 40

type histogram = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; histograms = Hashtbl.create 8 }
let global = create ()

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let add t name n = counter_ref t name := !(counter_ref t name) + n
let incr t name = add t name 1

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let bucket_of_seconds seconds =
  let micros = seconds *. 1e6 in
  let rec find i bound =
    if i >= bucket_count - 1 || micros <= bound then i
    else find (i + 1) (bound *. 2.)
  in
  find 0 1.

let bucket_upper_seconds i = 1e-6 *. (2. ** float_of_int i)

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h =
      { buckets = Array.make bucket_count 0; h_count = 0; h_sum = 0.; h_max = 0. }
    in
    Hashtbl.add t.histograms name h;
    h

let observe t name seconds =
  let seconds = if seconds < 0. then 0. else seconds in
  let h = histogram t name in
  let b = bucket_of_seconds seconds in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. seconds;
  if seconds > h.h_max then h.h_max <- seconds

type summary = {
  count : int;
  sum : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let histogram_quantile h q =
  (* Upper bound of the first bucket at which the cumulative count
     reaches q of the total, capped by the exact max. *)
  let target = int_of_float (ceil (q *. float_of_int h.h_count)) in
  let target = max 1 target in
  let rec walk i cumulative =
    if i >= bucket_count then h.h_max
    else
      let cumulative = cumulative + h.buckets.(i) in
      if cumulative >= target then min (bucket_upper_seconds i) h.h_max
      else walk (i + 1) cumulative
  in
  walk 0 0

let summarize t name =
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some h when h.h_count = 0 -> None
  | Some h ->
    Some
      {
        count = h.h_count;
        sum = h.h_sum;
        max = h.h_max;
        p50 = histogram_quantile h 0.5;
        p95 = histogram_quantile h 0.95;
        p99 = histogram_quantile h 0.99;
      }

let quantile samples q =
  match samples with
  | [] -> 0.
  | _ ->
    let sorted = List.sort compare samples in
    let n = List.length sorted in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    let rank = min (max rank 1) n in
    List.nth sorted (rank - 1)

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort compare

let summaries t =
  Hashtbl.fold
    (fun name _ acc ->
      match summarize t name with
      | Some s -> (name, s) :: acc
      | None -> acc)
    t.histograms []
  |> List.sort compare

let to_text t =
  let buffer = Buffer.create 256 in
  List.iter
    (fun (name, value) -> Buffer.add_string buffer (Printf.sprintf "%s %d\n" name value))
    (counters t);
  List.iter
    (fun (name, s) ->
      Buffer.add_string buffer
        (Printf.sprintf
           "%s count=%d sum=%.6f max=%.6f p50=%.6f p95=%.6f p99=%.6f\n" name
           s.count s.sum s.max s.p50 s.p95 s.p99))
    (summaries t);
  Buffer.contents buffer

let to_json t =
  let counter_fields =
    List.map
      (fun (name, value) -> Printf.sprintf "%S:%d" name value)
      (counters t)
  in
  let histogram_fields =
    List.map
      (fun (name, s) ->
        Printf.sprintf
          "%S:{\"count\":%d,\"sum\":%.6f,\"max\":%.6f,\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f}"
          name s.count s.sum s.max s.p50 s.p95 s.p99)
      (summaries t)
  in
  Printf.sprintf "{\"counters\":{%s},\"histograms\":{%s}}"
    (String.concat "," counter_fields)
    (String.concat "," histogram_fields)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.histograms
