(* Promoted to lib/obs (PR 4) so storage, the executor and the nest
   kernel can charge the same registry the server exposes; kept here
   as an alias so Server.Metrics call sites (tests, benches, the CLI)
   keep reading naturally. *)
include Obs.Registry
