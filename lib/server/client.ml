open Relational
open Nfr_core

exception Error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

type t = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable rlen : int;
  mutable alive : bool;
}

type statement_result = {
  stats : Storage.Stats.t;
  reply : [ `Rows of Schema.t * Ntuple.t list | `Msg of string ];
}

type response = {
  results : statement_result list;
  summary : string;
}

let connect ?(host = "127.0.0.1") ~port () =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> fail "host %s has no address" host
      | entry -> entry.Unix.h_addr_list.(0)
      | exception Not_found -> fail "unknown host %s" host)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
  | () -> ()
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    fail "connect %s:%d: %s" host port (Unix.error_message err));
  { fd; rbuf = Bytes.create 8192; rlen = 0; alive = true }

let close t =
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let fd t = t.fd

let send_raw t data =
  let rec push pos =
    if pos < String.length data then
      match Unix.write_substring t.fd data pos (String.length data - pos) with
      | n -> push (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> push pos
      | exception Unix.Unix_error (err, _, _) ->
        fail "write: %s" (Unix.error_message err)
    else ()
  in
  push 0

let send t message = send_raw t (Protocol.encode_string message)

let ensure_capacity t extra =
  let needed = t.rlen + extra in
  if needed > Bytes.length t.rbuf then begin
    let grown = Bytes.create (max needed (2 * Bytes.length t.rbuf)) in
    Bytes.blit t.rbuf 0 grown 0 t.rlen;
    t.rbuf <- grown
  end

let rec recv t =
  match Protocol.decode t.rbuf ~pos:0 ~len:t.rlen with
  | Protocol.Msg (message, consumed) ->
    Bytes.blit t.rbuf consumed t.rbuf 0 (t.rlen - consumed);
    t.rlen <- t.rlen - consumed;
    message
  | Protocol.Oversized n -> fail "server sent an oversized frame (%d bytes)" n
  | Protocol.Malformed reason -> fail "garbled frame from server: %s" reason
  | Protocol.Need_more -> (
    ensure_capacity t 8192;
    match Unix.read t.fd t.rbuf t.rlen (Bytes.length t.rbuf - t.rlen) with
    | 0 -> fail "connection closed by server"
    | n ->
      t.rlen <- t.rlen + n;
      recv t
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv t
    | exception Unix.Unix_error (err, _, _) ->
      fail "read: %s" (Unix.error_message err))

let ping t =
  send t Protocol.Ping;
  match recv t with
  | Protocol.Pong -> ()
  | other -> fail "expected pong, got %s" (Protocol.message_name other)

let query_send t source = send t (Protocol.Query source)

let query_recv t =
  let rec collect results =
    match recv t with
    | Protocol.Stats stats -> (
      match recv t with
      | Protocol.Rows (schema, ntuples) ->
        collect ({ stats; reply = `Rows (schema, ntuples) } :: results)
      | Protocol.Done text -> collect ({ stats; reply = `Msg text } :: results)
      | other ->
        fail "expected a statement result after stats, got %s"
          (Protocol.message_name other))
    | Protocol.Done summary -> Ok { results = List.rev results; summary }
    | Protocol.Err (code, reason) -> (
      Stdlib.Error (code, reason))
    | other -> fail "unexpected %s frame in response" (Protocol.message_name other)
  in
  collect []

let query t source =
  query_send t source;
  query_recv t

let query_exn t source =
  match query t source with
  | Ok response -> response
  | Stdlib.Error (code, reason) ->
    fail "%s: %s" (Protocol.err_code_name code) reason

let metrics t =
  send t Protocol.Metrics_req;
  match recv t with
  | Protocol.Metrics dump -> dump
  | Protocol.Err (code, reason) ->
    fail "%s: %s" (Protocol.err_code_name code) reason
  | other -> fail "expected metrics, got %s" (Protocol.message_name other)

let metrics_prom t =
  send t Protocol.Metrics_prom_req;
  match recv t with
  | Protocol.Metrics_prom dump -> dump
  | Protocol.Err (code, reason) ->
    fail "%s: %s" (Protocol.err_code_name code) reason
  | other -> fail "expected metrics-prom, got %s" (Protocol.message_name other)

let shutdown t =
  send t Protocol.Shutdown;
  match recv t with
  | Protocol.Done _ -> ()
  | Protocol.Err (code, reason) ->
    fail "%s: %s" (Protocol.err_code_name code) reason
  | other -> fail "expected done, got %s" (Protocol.message_name other)

let subscribe t view =
  send t (Protocol.Subscribe view);
  match recv t with
  | Protocol.Done text -> text
  | Protocol.Err (code, reason) ->
    fail "%s: %s" (Protocol.err_code_name code) reason
  | other -> fail "expected done, got %s" (Protocol.message_name other)

let next_delta t =
  match recv t with
  | Protocol.Delta delta -> delta
  | Protocol.Err (code, reason) ->
    fail "%s: %s" (Protocol.err_code_name code) reason
  | other -> fail "expected delta, got %s" (Protocol.message_name other)

let repl_subscribe t =
  send t Protocol.Repl_subscribe;
  match recv t with
  | Protocol.Done text -> text
  | Protocol.Err (code, reason) ->
    fail "%s: %s" (Protocol.err_code_name code) reason
  | other -> fail "expected done, got %s" (Protocol.message_name other)

let next_repl_entry t =
  match recv t with
  | Protocol.Repl_entry event -> event
  | Protocol.Err (code, reason) ->
    fail "%s: %s" (Protocol.err_code_name code) reason
  | other -> fail "expected repl-entry, got %s" (Protocol.message_name other)

let repl_ack t seq = send t (Protocol.Repl_ack seq)

let promote t =
  send t Protocol.Promote;
  match recv t with
  | Protocol.Done text -> text
  | Protocol.Err (code, reason) ->
    fail "%s: %s" (Protocol.err_code_name code) reason
  | other -> fail "expected done, got %s" (Protocol.message_name other)
