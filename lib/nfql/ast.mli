(** NFQL abstract syntax.

    Statement grammar (keywords case-insensitive):

    {v
    CREATE TABLE t (col type, ...) [ORDER col, ...]
    DROP TABLE t
    CREATE VIEW v AS NEST t BY col, ...
    DROP VIEW v
    INSERT INTO t VALUES (lit, ...) [, (lit, ...) ...]
    DELETE FROM t VALUES (lit, ...)
    DELETE FROM t WHERE cond
    UPDATE t SET col = lit [, col = lit ...] WHERE cond
    SELECT *|col,... FROM t [JOIN t2] [WHERE cond]
        [NEST col,...] [UNNEST col,...]
    SELECT COUNT FROM t [WHERE cond]
    EXPLAIN [ANALYZE] <select>
    ANALYZE t
    TRACE <statement>
    SHOW t
    HISTORY 'series' [LAST n]
    v}

    Conditions: comparisons over columns and literals, [CONTAINS]
    (component membership), AND/OR/NOT, parentheses. *)

type literal =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool

type comparison =
  | C_eq
  | C_neq
  | C_lt
  | C_le
  | C_gt
  | C_ge

type operand =
  | O_column of string
  | O_literal of literal

type condition =
  | Compare of comparison * operand * operand
  | Contains of string * literal  (** [col CONTAINS lit] *)
  | And of condition * condition
  | Or of condition * condition
  | Not of condition

type source =
  | From_table of string
  | From_join of string * string  (** natural join of two tables *)

type select = {
  columns : string list option;  (** [None] is [*] *)
  source : source;
  where : condition option;
  nests : string list;
  unnests : string list;
}

type statement =
  | Create of string * (string * string) list * string list option
  | Drop of string
  | Create_view of string * string * string list
      (** [CREATE VIEW v AS NEST t BY cols]: materialize the canonical
          form of [t] nested by [cols] (then the rest of the schema in
          schema order) and keep it maintained incrementally *)
  | Drop_view of string
  | Insert of string * literal list list
  | Delete_values of string * literal list
  | Delete_where of string * condition
  | Update_set of string * (string * literal) list * condition
  | Select of select
  | Select_count of source * condition option
  | Explain of select
  | Explain_analyze of select
      (** run the select and report per-operator execution metrics *)
  | Analyze of string
      (** collect {!Tablestats} for the table (row count, Def. 6
          classes, posting distribution, fixedness) — the cost-based
          planner's input *)
  | Trace of statement
      (** run the statement under a trace scope and return its span
          tree as rows *)
  | Show of string
  | History of string * int option
      (** [HISTORY 'series' [LAST n]]: the newest [n] (default: all)
          scraped samples of one metrics series, all downsample tiers
          merged, read from the [_metrics] system table *)
  | Begin  (** open a transaction (snapshot isolation) *)
  | Commit
      (** apply the open transaction's writes; first committer wins —
          a conflicting earlier commit aborts this one *)
  | Rollback  (** discard the open transaction's writes *)

val pp_literal : Format.formatter -> literal -> unit
val pp_condition : Format.formatter -> condition -> unit
val pp_statement : Format.formatter -> statement -> unit

val statement_verb : statement -> string
(** The statement's leading verb, lowercase ("select", "insert", ...;
    TRACE prefixes the inner verb as ["trace:select"]). Cheap — used
    for span labels and metrics, never full statement text. *)
