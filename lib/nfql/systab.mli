(** Read-only system tables, shared by both evaluators.

    A system table is a name starting with ['_'] resolved through a
    per-database provider registry instead of the table catalog. A
    provider returns the table's current contents on demand — a nest
    application order plus a canonical NFR — so the server can expose
    live self-monitoring state ([_metrics], [_slow_queries],
    [_traces]) as ordinary queryable relations without the evaluators
    knowing what stands behind them.

    System tables accept SELECT / SELECT COUNT / SHOW / EXPLAIN and
    reject all DML and DDL with a typed error, like views but provider
    backed. *)

open Relational
open Nfr_core

type provider = unit -> Attribute.t list * Nfr.t
(** Current contents: the nest application order and the NFR (which
    must be canonical for that order). Called once per statement. *)

type registry

val create : unit -> registry

val is_system_name : string -> bool
(** Does the name start with ['_']? Only such names may be
    registered, and ordinary CREATE TABLE/VIEW may not use them. *)

val register : registry -> string -> provider -> unit
(** @raise Invalid_argument unless {!is_system_name} holds. Replaces
    any previous provider under the same name. *)

val find : registry -> string -> provider option
val names : registry -> string list

val read_only_error : string -> string
(** The typed-error message every write path uses. *)

val reserved_error : string -> string
(** The message for CREATE TABLE/CREATE VIEW on a ['_'] name. *)

val history_result :
  registry ->
  series:string ->
  last:int option ->
  (Nfr.t, string) result
(** Execute [HISTORY 'series' [LAST n]] against the [_metrics]
    provider: the series' flat samples (Series, Tier, Value, Ts)
    ascending by timestamp, newest [n] when [last] is given. [Error]
    when no [_metrics] provider is installed or its schema lacks
    Series/Ts columns. *)
