open Relational
open Nfr_core

exception Eval_error = Compile.Error

let error fmt = Compile.error fmt

module String_map = Map.Make (String)

type table_state = {
  nfr : Nfr.t;
  order : Attribute.t list;
}

type db = {
  mutable tables : table_state String_map.t;
  (* The tables map as it stood at BEGIN: the whole transaction story
     of this back end. NFRs are persistent values, so saving the map is
     an O(1) snapshot, rollback is a pointer swap, and commit just
     forgets the save point. *)
  mutable txn_saved : table_state String_map.t option;
  views : Views.Catalog.t;
  (* Committed base-table writes a transaction has buffered for view
     maintenance: views only ever absorb deltas at commit points, so
     autocommit DML applies immediately while in-txn DML queues here
     (oldest first) until COMMIT — and is simply discarded on
     ROLLBACK. *)
  mutable txn_pending : (string * Views.Catalog.op) list;
  (* Read-only system tables (_metrics, _slow_queries, ...) resolved
     through per-db providers; see {!Systab}. *)
  sys : Systab.registry;
}

type result =
  | Done of string
  | Rows of Nfr.t

let create () =
  {
    tables = String_map.empty;
    txn_saved = None;
    views = Views.Catalog.create ();
    txn_pending = [];
    sys = Systab.create ();
  }

let register_system_table db name provider = Systab.register db.sys name provider
let system_table_names db = Systab.names db.sys
let is_system db name = Systab.find db.sys name <> None

let in_txn db = db.txn_saved <> None
let catalog db = db.views
let is_view db name = Views.Catalog.mem db.views name

let find_table db name =
  match String_map.find_opt name db.tables with
  | Some state -> state
  | None -> error "unknown table %s" name

(* Reads treat a view or a system table as a table: resolve the name
   against base tables first, then the materialized view catalog, then
   the system-table providers. *)
let find_readable db name =
  match String_map.find_opt name db.tables with
  | Some state -> (state.nfr, state.order)
  | None ->
    if is_view db name then
      (Views.Catalog.snapshot db.views name, Views.Catalog.order db.views name)
    else (
      match Systab.find db.sys name with
      | Some provider ->
        let order, nfr = provider () in
        (nfr, order)
      | None -> error "unknown table %s" name)

(* The typed write guard: DML must name a base table, never a view or
   a system table. *)
let require_writable db name =
  if is_view db name then error "%s is a view: views are read-only" name;
  if is_system db name then error "%s" (Systab.read_only_error name)

let apply_committed db base ops =
  ignore
    (Views.Catalog.apply db.views ~base
       ~base_nfr:(lazy (find_table db base).nfr)
       ops)

let note_dml db base ops =
  if ops <> [] then begin
    if in_txn db then db.txn_pending <- db.txn_pending @ List.map (fun op -> (base, op)) ops
    else apply_committed db base ops
  end

(* COMMIT is the views' commit point: fold the buffered writes into
   every dependent view, one delta group per base table. *)
let flush_pending db =
  let pending = db.txn_pending in
  db.txn_pending <- [];
  let bases =
    List.rev
      (List.fold_left
         (fun acc (base, _) -> if List.mem base acc then acc else base :: acc)
         [] pending)
  in
  if List.length bases > 1 then
    Obs.Registry.incr Obs.Registry.global "txn.multi_table_commit";
  List.iter
    (fun base ->
      apply_committed db base
        (List.filter_map
           (fun (b, op) -> if b = base then Some op else None)
           pending))
    bases

let value_of_literal = Compile.value_of_literal
let attribute_of = Compile.attribute_of


let split_condition = Compile.split_condition

let type_of_name name =
  match Value.ty_of_name (String.lowercase_ascii name) with
  | Some ty -> ty
  | None -> error "unknown type %s" name

let tuple_of_row schema row =
  if List.length row <> Schema.degree schema then
    error "expected %d values, got %d" (Schema.degree schema) (List.length row);
  match Tuple.make schema (List.map value_of_literal row) with
  | tuple -> tuple
  | exception Schema.Schema_error msg -> error "%s" msg

let require_no_txn db what =
  if db.txn_saved <> None then error "%s is not allowed inside a transaction" what

let exec_create db table columns order =
  require_no_txn db "CREATE TABLE";
  if Systab.is_system_name table then error "%s" (Systab.reserved_error table);
  if String_map.mem table db.tables then error "table %s already exists" table;
  if is_view db table then error "view %s already exists" table;
  let schema =
    match Schema.of_names (List.map (fun (name, ty) -> (name, type_of_name ty)) columns) with
    | schema -> schema
    | exception Schema.Schema_error msg -> error "%s" msg
  in
  let order_attrs =
    match order with
    | None -> Schema.attributes schema
    | Some names ->
      let attrs = List.map (attribute_of schema) names in
      (match Nest.check_permutation schema attrs with
      | () -> attrs
      | exception Invalid_argument msg -> error "%s" msg)
  in
  db.tables <-
    String_map.add table { nfr = Nfr.empty schema; order = order_attrs } db.tables;
  Done (Printf.sprintf "table %s created" table)

let exec_insert db table rows =
  require_writable db table;
  let state = find_table db table in
  let schema = Nfr.schema state.nfr in
  let inserted, skipped, ops =
    List.fold_left
      (fun (nfr, skipped, ops) row ->
        let tuple = tuple_of_row schema row in
        if Nfr.member_tuple nfr tuple then (nfr, skipped + 1, ops)
        else
          ( Update.insert ~order:state.order nfr tuple,
            skipped,
            Views.Catalog.Ins tuple :: ops ))
      (state.nfr, 0, []) rows
  in
  db.tables <- String_map.add table { state with nfr = inserted } db.tables;
  note_dml db table (List.rev ops);
  Done
    (Printf.sprintf "%d row(s) inserted%s" (List.length rows - skipped)
       (if skipped > 0 then Printf.sprintf ", %d duplicate(s) skipped" skipped
        else ""))

let exec_delete_values db table row =
  require_writable db table;
  let state = find_table db table in
  let schema = Nfr.schema state.nfr in
  let tuple = tuple_of_row schema row in
  match Update.delete ~order:state.order state.nfr tuple with
  | nfr ->
    db.tables <- String_map.add table { state with nfr } db.tables;
    note_dml db table [ Views.Catalog.Del tuple ];
    Done "1 row deleted"
  | exception Update.Not_in_relation ->
    error "tuple %s is not in %s" (Format.asprintf "%a" Tuple.pp tuple) table

let matching_tuples schema nfr condition =
  let predicates, contains = split_condition schema condition in
  let restricted =
    List.fold_left
      (fun nfr (attribute, value) -> Nalgebra.select_contains attribute value nfr)
      nfr contains
  in
  let flat = Nfr.flatten restricted in
  List.fold_left
    (fun flat predicate ->
      match Algebra.select predicate flat with
      | selected -> selected
      | exception Algebra.Algebra_error msg -> error "%s" msg)
    flat predicates

let exec_delete_where db table condition =
  require_writable db table;
  let state = find_table db table in
  let schema = Nfr.schema state.nfr in
  let victims = Relation.tuples (matching_tuples schema state.nfr condition) in
  let nfr =
    List.fold_left
      (fun nfr tuple -> Update.delete ~order:state.order nfr tuple)
      state.nfr victims
  in
  db.tables <- String_map.add table { state with nfr } db.tables;
  note_dml db table (List.map (fun t -> Views.Catalog.Del t) victims);
  Done (Printf.sprintf "%d row(s) deleted" (List.length victims))

(* Resolve a FROM clause to an NFR plus a canonical order for it. A
   join is computed directly on the NFRs (pairwise component
   intersection) and re-canonicalized so the WHERE machinery's
   canonicity assumption holds. *)
let resolve_source db = function
  | Ast.From_table name -> find_readable db name
  | Ast.From_join (left_name, right_name) ->
    if is_view db left_name || is_view db right_name then
      error "views cannot appear in JOIN";
    if is_system db left_name || is_system db right_name then
      error "system tables cannot appear in JOIN";
    let left = find_table db left_name in
    let right = find_table db right_name in
    let joined =
      match Nalgebra.natural_join left.nfr right.nfr with
      | joined -> joined
      | exception Schema.Schema_error msg -> error "%s" msg
    in
    let order = Schema.attributes (Nfr.schema joined) in
    (Nest.canonicalize joined order, order)

let apply_where = Compile.apply_where

let exec_select db (s : Ast.select) =
  let source, order = resolve_source db s.source in
  let schema = Nfr.schema source in
  let filtered = apply_where schema order source s.where in
  Rows (Compile.shape_select filtered ~order s)

let exec_select_count db source condition =
  let nfr, order = resolve_source db source in
  let filtered = apply_where (Nfr.schema nfr) order nfr condition in
  Done
    (Printf.sprintf "%d fact(s) in %d NFR tuple(s)"
       (Nfr.expansion_size filtered) (Nfr.cardinality filtered))

let exec_update_set db table assignments condition =
  require_writable db table;
  let state = find_table db table in
  let schema = Nfr.schema state.nfr in
  let resolved =
    List.map
      (fun (name, literal) ->
        let attribute = attribute_of schema name in
        let value = value_of_literal literal in
        let expected = Schema.type_of_attribute schema attribute in
        if Value.type_of value <> expected then
          error "column %s expects %s" name (Value.ty_name expected);
        (attribute, value))
      assignments
  in
  let victims = Relation.tuples (matching_tuples schema state.nfr condition) in
  let updated_tuples =
    List.map
      (fun tuple ->
        List.fold_left
          (fun tuple (attribute, value) ->
            Tuple.set_field schema tuple attribute value)
          tuple resolved)
      victims
  in
  (* Delete every victim first, then insert the images (set semantics
     deduplicates images that collide with surviving tuples). *)
  let without =
    List.fold_left
      (fun nfr tuple -> Update.delete ~order:state.order nfr tuple)
      state.nfr victims
  in
  let final =
    List.fold_left
      (fun nfr tuple -> Update.insert ~order:state.order nfr tuple)
      without updated_tuples
  in
  db.tables <- String_map.add table { state with nfr = final } db.tables;
  (* Views see only the net writes: identity images are no-ops. *)
  let changed =
    List.filter
      (fun (victim, image) -> not (Tuple.equal victim image))
      (List.combine victims updated_tuples)
  in
  note_dml db table
    (List.map (fun (victim, _) -> Views.Catalog.Del victim) changed
    @ List.map (fun (_, image) -> Views.Catalog.Ins image) changed);
  Done (Printf.sprintf "%d row(s) updated" (List.length victims))

let exec_explain db (s : Ast.select) =
  let source, order = resolve_source db s.source in
  let schema = Nfr.schema source in
  let buffer = Buffer.create 128 in
  let line fmt = Printf.ksprintf (fun msg -> Buffer.add_string buffer (msg ^ "\n")) fmt in
  line "plan:";
  (match s.source with
  | Ast.From_table name ->
    line "  scan %s (canonical, order %s, %d NFR tuples)" name
      (String.concat "," (List.map Attribute.name order))
      (Nfr.cardinality source)
  | Ast.From_join (l, r) ->
    line "  join %s %s (pairwise component intersection, re-canonicalized)" l r);
  (match s.where with
  | None -> ()
  | Some condition ->
    let predicates, contains = split_condition schema condition in
    List.iter
      (fun (attribute, value) ->
        line "  contains-filter %s ∋ %s (tuple-level, no expansion)"
          (Attribute.name attribute) (Value.to_string value))
      contains;
    List.iter
      (fun predicate ->
        if Nalgebra.componentwise_selectable predicate then
          line "  select %s (componentwise, no expansion)"
            (Format.asprintf "%a" Predicate.pp predicate)
        else
          line "  select %s (correlated: per-tuple expansion)"
            (Format.asprintf "%a" Predicate.pp predicate))
      predicates);
  (match s.columns with
  | None -> ()
  | Some names -> line "  project %s (re-canonicalized)" (String.concat "," names));
  List.iter (fun name -> line "  nest %s" name) s.nests;
  List.iter (fun name -> line "  unnest %s" name) s.unnests;
  Done (String.trim (Buffer.contents buffer))

(* TRACE surface: one row per span of the statement's trace, in ring
   order (parents before children) so clients can rebuild the tree. *)
let trace_schema =
  Schema.of_names
    [
      ("Span", Value.Tint);
      ("Parent", Value.Tint);
      ("Event", Value.Tstring);
      ("Label", Value.Tstring);
      ("Ms", Value.Tfloat);
      ("Rows", Value.Tint);
      ("Bytes", Value.Tint);
    ]

let rows_of_spans spans =
  List.fold_left
    (fun acc (sp : Obs.Span.t) ->
      let cells =
        [|
          Vset.singleton (Value.of_int sp.Obs.Span.id);
          Vset.singleton (Value.of_int sp.Obs.Span.parent);
          Vset.singleton (Value.of_string (Obs.Span.event_name sp.Obs.Span.event));
          Vset.singleton (Value.of_string sp.Obs.Span.label);
          Vset.singleton (Value.of_float (Obs.Span.busy sp *. 1000.));
          Vset.singleton (Value.of_int sp.Obs.Span.rows);
          Vset.singleton (Value.of_int sp.Obs.Span.bytes);
        |]
      in
      Nfr.add acc (Ntuple.of_sets_unchecked cells))
    (Nfr.empty trace_schema) spans

let rec exec db statement =
  match statement with
  | Ast.Create (table, columns, order) -> exec_create db table columns order
  | Ast.Drop table ->
    require_no_txn db "DROP TABLE";
    if is_system db table then error "%s" (Systab.read_only_error table);
    if is_view db table then error "%s is a view: use DROP VIEW" table;
    if String_map.mem table db.tables then begin
      (match Views.Catalog.dependents db.views ~base:table with
      | [] -> ()
      | deps ->
        error "cannot drop table %s: view %s depends on it" table
          (String.concat ", " deps));
      db.tables <- String_map.remove table db.tables;
      Done (Printf.sprintf "table %s dropped" table)
    end
    else error "unknown table %s" table
  | Ast.Create_view (view, base, by) -> (
    require_no_txn db "CREATE VIEW";
    if Systab.is_system_name view then error "%s" (Systab.reserved_error view);
    if String_map.mem view db.tables then error "table %s already exists" view;
    if is_view db base then
      error "%s is a view: views must be defined over base tables" base;
    if is_system db base then
      error "%s is a system table: views must be defined over base tables" base;
    let state = find_table db base in
    match Views.Catalog.define db.views ~view ~base ~by state.nfr with
    | () -> Done (Printf.sprintf "view %s created" view)
    | exception Views.Catalog.View_error msg -> error "%s" msg)
  | Ast.Drop_view view -> (
    require_no_txn db "DROP VIEW";
    match Views.Catalog.drop db.views view with
    | () -> Done (Printf.sprintf "view %s dropped" view)
    | exception Views.Catalog.View_error msg -> error "%s" msg)
  | Ast.Insert (table, rows) -> exec_insert db table rows
  | Ast.Delete_values (table, row) -> exec_delete_values db table row
  | Ast.Delete_where (table, condition) -> exec_delete_where db table condition
  | Ast.Update_set (table, assignments, condition) ->
    exec_update_set db table assignments condition
  | Ast.Select s -> exec_select db s
  | Ast.Select_count (source, condition) -> exec_select_count db source condition
  | Ast.Explain s -> exec_explain db s
  | Ast.Explain_analyze s ->
    (* The logical back end has no physical operators to meter; report
       the plan annotated with the select's actual output size. The
       physical back end ({!Physical}) renders per-operator counters. *)
    let plan =
      match exec_explain db s with
      | Done text -> text
      | Rows _ -> assert false
    in
    (match exec_select db s with
    | Rows rows ->
      Done
        (Printf.sprintf "%s\n  actual: %d fact(s) in %d NFR tuple(s)" plan
           (Nfr.expansion_size rows) (Nfr.cardinality rows))
    | Done _ -> assert false)
  | Ast.Analyze name ->
    (* The logical back end has no planner to feed, but it still
       collects and reports the same statistics so the differential
       suite can compare the text verbatim with {!Physical}. *)
    if is_view db name then
      error "cannot ANALYZE view %s: statistics are collected on base tables"
        name;
    if is_system db name then
      error "cannot ANALYZE system table %s: statistics are collected on base tables"
        name;
    let state = find_table db name in
    Done (Tablestats.summary name (Tablestats.collect state.nfr))
  | Ast.Trace inner ->
    (* Run the statement under a trace scope (reusing an ambient one if
       the server already opened it) and return its spans as rows. *)
    let run () = ignore (exec db inner) in
    let trace =
      match Obs.Span.current_trace () with
      | Some trace ->
        run ();
        trace
      | None ->
        Obs.Span.in_trace (fun trace ->
            run ();
            trace)
    in
    Rows (rows_of_spans (Obs.Span.spans_of_trace trace))
  | Ast.Show table -> Rows (fst (find_readable db table))
  | Ast.History (series, last) -> (
    match Systab.history_result db.sys ~series ~last with
    | Ok rows -> Rows rows
    | Error msg -> error "%s" msg)
  | Ast.Begin -> (
    match db.txn_saved with
    | Some _ -> error "a transaction is already open"
    | None ->
      db.txn_saved <- Some db.tables;
      db.txn_pending <- [];
      Done "transaction open")
  | Ast.Commit -> (
    match db.txn_saved with
    | None -> error "no transaction is open"
    | Some _ ->
      db.txn_saved <- None;
      flush_pending db;
      Done "transaction committed")
  | Ast.Rollback -> (
    match db.txn_saved with
    | None -> error "no transaction is open"
    | Some saved ->
      db.tables <- saved;
      db.txn_saved <- None;
      db.txn_pending <- [];
      Done "transaction rolled back")

let exec_string db input =
  List.map (exec db) (Parser.parse_script input)

let table db name =
  Option.map (fun state -> state.nfr) (String_map.find_opt name db.tables)

let table_order db name =
  Option.map (fun state -> state.order) (String_map.find_opt name db.tables)

let define db name ~order nfr =
  if not (Nest.is_canonical nfr order) then
    error "NFR for %s is not canonical for the given order" name;
  db.tables <- String_map.add name { nfr; order } db.tables

let pp_result ppf = function
  | Done msg -> Format.pp_print_string ppf msg
  | Rows nfr -> Nfr.pp_table ppf nfr
