(** NFQL evaluation against an in-memory database of canonical NFRs.

    Each table carries a nest application order fixed at CREATE time
    (default: schema order); INSERT and DELETE maintain the canonical
    form through {!Nfr_core.Update}, so every statement leaves every
    table canonical — the paper's realization discipline.

    WHERE semantics: plain comparisons select over the {e expansion}
    ([R*]); [CONTAINS] selects whole NFR tuples by component
    membership. The two may be mixed as top-level conjuncts; a
    [CONTAINS] under OR/NOT is rejected (its tuple-level meaning does
    not distribute over expansion selection).

    Transactions: [BEGIN] snapshots the (persistent) tables map,
    [ROLLBACK] restores it, [COMMIT] forgets the save point. This back
    end is single-session, so there is nothing to conflict with — the
    snapshot-isolation story lives in {!Physical}. DDL ([CREATE]/
    [DROP]) is rejected inside a transaction, matching {!Physical}. *)

open Relational
open Nfr_core

type db

exception Eval_error of string

type result =
  | Done of string  (** DDL/DML acknowledgement *)
  | Rows of Nfr.t  (** SELECT/SHOW result *)

val create : unit -> db

val in_txn : db -> bool
(** Is a transaction open? *)

val exec : db -> Ast.statement -> result
(** @raise Eval_error on unknown tables/columns, type mismatches,
    deleting absent tuples, or unsupported CONTAINS placement. *)

val exec_string : db -> string -> result list
(** Parse and run a whole script.
    @raise Eval_error, [Parser.Parse_error] or [Lexer.Lex_error]. *)

val table : db -> string -> Nfr.t option
(** Direct table access for tests and the CLI. *)

val catalog : db -> Views.Catalog.t
(** The database's view catalog (incrementally maintained canonical
    NFRs). Views absorb committed DML only: autocommit writes
    immediately, in-transaction writes at COMMIT, never from the
    uncommitted overlay. *)

val table_order : db -> string -> Attribute.t list option

val register_system_table : db -> string -> Systab.provider -> unit
(** Install (or replace) a read-only system-table provider; see
    {!Systab}. @raise Invalid_argument unless the name starts with
    ['_']. *)

val system_table_names : db -> string list

val define : db -> string -> order:Attribute.t list -> Nfr.t -> unit
(** Install an externally built NFR as a table (CLI loading path).
    @raise Eval_error if the NFR is not canonical for [order]. *)

val rows_of_spans : Obs.Span.t list -> Nfr.t
(** The TRACE result surface: one row per span — (Span, Parent, Event,
    Label, Ms, Rows, Bytes) — shared by both back ends. *)

val pp_result : Format.formatter -> result -> unit
