open Relational
open Nfr_core

let error fmt = Compile.error fmt

module String_map = Map.Make (String)

module Ntuple_tbl = Hashtbl.Make (struct
  type t = Ntuple.t

  let equal = Ntuple.equal
  let hash = Ntuple.hash
end)

type db = {
  mutable tables : Storage.Table.t String_map.t;
  (* Pre-order (label, rows_out) of the last executed operator tree —
     the slow-query log snapshots it without re-running anything. *)
  mutable last_ops : (string * int) list;
}

type access_path =
  | Via_scan
  | Via_index of Attribute.t * Value.t
  | Via_range of Attribute.t * Value.t option * Value.t option

let create () = { tables = String_map.empty; last_ops = [] }
let last_profile db = db.last_ops

let add_table db name table =
  if String_map.mem name db.tables then error "table %s already exists" name;
  db.tables <- String_map.add name table db.tables

let table db name = String_map.find_opt name db.tables

let find_table db name =
  match table db name with
  | Some t -> t
  | None -> error "unknown table %s" name

(* ------------------------------------------------------------------ *)
(* Access-path choice                                                  *)
(* ------------------------------------------------------------------ *)

(* An equality conjunct [attr = const] yields an index probe. *)
let equality_probe = function
  | Predicate.Compare (Predicate.Eq, Predicate.Field attribute, Predicate.Const value)
  | Predicate.Compare (Predicate.Eq, Predicate.Const value, Predicate.Field attribute)
    ->
    Some (attribute, value)
  | Predicate.Compare _ | Predicate.True | Predicate.False | Predicate.And _
  | Predicate.Or _ | Predicate.Not _ ->
    None

(* Bounds a conjunct imposes on [attribute]: inclusive over-
   approximations are fine — the exact predicate runs afterwards. *)
let bounds_on attribute = function
  | Predicate.Compare (op, Predicate.Field a, Predicate.Const v)
    when Attribute.equal a attribute -> (
    match op with
    | Predicate.Le | Predicate.Lt -> (None, Some v)
    | Predicate.Ge | Predicate.Gt -> (Some v, None)
    | Predicate.Eq -> (Some v, Some v)
    | Predicate.Neq -> (None, None))
  | Predicate.Compare (op, Predicate.Const v, Predicate.Field a)
    when Attribute.equal a attribute -> (
    match op with
    | Predicate.Le | Predicate.Lt -> (Some v, None)
    | Predicate.Ge | Predicate.Gt -> (None, Some v)
    | Predicate.Eq -> (Some v, Some v)
    | Predicate.Neq -> (None, None))
  | Predicate.Compare _ | Predicate.True | Predicate.False | Predicate.And _
  | Predicate.Or _ | Predicate.Not _ ->
    (None, None)

let tighter keep a b =
  match a, b with
  | None, other | other, None -> other
  | Some x, Some y -> Some (if keep (Value.compare x y) then x else y)

let chosen_path db (s : Ast.select) =
  match s.Ast.source with
  | Ast.From_join _ -> Via_scan
  | Ast.From_table name -> (
    let t = find_table db name in
    let schema = Storage.Table.schema t in
    match s.Ast.where with
    | None -> Via_scan
    | Some condition -> (
      let predicates, contains = Compile.split_condition schema condition in
      (* Rank every probe candidate (CONTAINS constraints and equality
         conjuncts) by posting-list length — cheapest first. *)
      let candidates = contains @ List.filter_map equality_probe predicates in
      match
        List.sort
          (fun (attr_a, val_a) (attr_b, val_b) ->
            Int.compare
              (Storage.Table.posting_size t attr_a val_a)
              (Storage.Table.posting_size t attr_b val_b))
          candidates
      with
      | (attribute, value) :: _ -> Via_index (attribute, value)
      | [] -> (
        match Storage.Table.ordered_attribute t with
        | None -> Via_scan
        | Some ordered -> (
          let lo, hi =
            List.fold_left
              (fun (lo, hi) predicate ->
                let plo, phi = bounds_on ordered predicate in
                (tighter (fun c -> c > 0) lo plo, tighter (fun c -> c < 0) hi phi))
              (None, None) predicates
          in
          match lo, hi with
          | None, None -> Via_scan
          | lo, hi -> Via_range (ordered, lo, hi)))))

(* ------------------------------------------------------------------ *)
(* Pull-based operator tree                                            *)
(* ------------------------------------------------------------------ *)

(* Peak-live-tuple meter: every operator that buffers decoded tuples
   (filter queues, join queues, blocking canonicalize, the final
   collector) registers what it holds, so [peak] is the high-water
   mark of tuples simultaneously alive during one statement — the
   number a materializing executor would push to O(table). *)
type meter = {
  mutable live : int;
  mutable peak : int;
}

let meter_create () = { live = 0; peak = 0 }

let meter_add m n =
  m.live <- m.live + n;
  if m.live > m.peak then m.peak <- m.live

let meter_sub m n = m.live <- m.live - n

(* One node of the operator tree. [pull] returns the next tuple or
   [None] when exhausted; [stats] charges only this operator's own
   storage touches. Timing lives on the operator's {!Obs.Span}: each
   pull adds its elapsed wall clock to the span's busy time, inclusive
   of its inputs (a parent's pull calls its children's pulls inside
   its own clock). When a trace scope is open the spans land in the
   ring as children of the enclosing Plan span, so EXPLAIN ANALYZE and
   TRACE read the very same clocks. *)
type op = {
  label : string;
  stats : Storage.Stats.t;
  span : Obs.Span.t;
  mutable rows_out : int;
  children : op list;
  mutable pull : unit -> Ntuple.t option;
}

let make_op ?(children = []) label =
  {
    label;
    stats = Storage.Stats.create ();
    span = Obs.Span.enter (Obs.Span.Operator label) label;
    rows_out = 0;
    children;
    pull = (fun () -> None);
  }

let pull_op op =
  let start = Obs.Span.now () in
  let result = op.pull () in
  Obs.Span.add_busy op.span (Obs.Span.now () -. start);
  (match result with
  | Some _ -> op.rows_out <- op.rows_out + 1
  | None -> ());
  result

(* Seal the tree's spans once the statement is done: copy each
   operator's row/byte tallies onto its span and mark it ended. *)
let rec finish_ops op =
  Obs.Span.set_rows op.span op.rows_out;
  Obs.Span.set_bytes op.span op.stats.Storage.Stats.bytes_read;
  Obs.Span.finish op.span;
  List.iter finish_ops op.children

let rec profile_ops op =
  (op.label, op.rows_out) :: List.concat_map profile_ops op.children

let scan_op t name =
  let op = make_op (Printf.sprintf "heap-scan %s" name) in
  let cursor = lazy (Storage.Table.scan_cursor t ~stats:op.stats) in
  op.pull <- (fun () -> (Lazy.force cursor) ());
  op

let probe_op t name attribute value =
  let op =
    make_op
      (Printf.sprintf "index-probe %s (%s ∋ %s)" name (Attribute.name attribute)
         (Value.to_string value))
  in
  let cursor =
    lazy (Storage.Table.lookup_cursor t ~stats:op.stats attribute value)
  in
  op.pull <- (fun () -> (Lazy.force cursor) ());
  op

let bound_text prefix = function
  | Some value -> Value.to_string value
  | None -> prefix

let range_op t name attribute lo hi =
  let op =
    make_op
      (Printf.sprintf "btree-range %s (%s in [%s, %s])" name
         (Attribute.name attribute) (bound_text "-∞" lo) (bound_text "+∞" hi))
  in
  let cursor = lazy (Storage.Table.range_cursor t ~stats:op.stats ?lo ?hi ()) in
  op.pull <- (fun () -> (Lazy.force cursor) ());
  op

(* Streaming WHERE: tuple-level CONTAINS checks on the stored grouping
   first, then the expansion-level predicates via
   {!Nalgebra.select_tuple} (componentwise shrink, or per-tuple
   expansion for correlated predicates). Predicates may turn one input
   tuple into several output tuples; the extras wait in a queue. The
   final re-canonicalization (when predicates exist) happens once, in
   the collector — {!Nalgebra.select_tuple}'s contract makes that
   equivalent to {!Compile.apply_where}. *)
let filter_op schema ~contains ~predicates ~label meter child =
  let op = make_op ~children:[ child ] (Printf.sprintf "filter %s" label) in
  let contains_positions =
    List.map
      (fun (attribute, value) -> (Schema.position schema attribute, value))
      contains
  in
  let keeps nt =
    List.for_all
      (fun (position, value) -> Vset.mem value (Ntuple.component nt position))
      contains_positions
  in
  let select_tuple predicate nt =
    match Nalgebra.select_tuple schema predicate nt with
    | nts -> nts
    | exception Invalid_argument msg -> error "%s" msg
  in
  let queue = Queue.create () in
  let rec next () =
    if not (Queue.is_empty queue) then begin
      meter_sub meter 1;
      Some (Queue.pop queue)
    end
    else
      match pull_op child with
      | None -> None
      | Some nt ->
        if not (keeps nt) then next ()
        else begin
          let survivors =
            List.fold_left
              (fun nts predicate -> List.concat_map (select_tuple predicate) nts)
              [ nt ] predicates
          in
          match survivors with
          | [] -> next ()
          | first :: rest ->
            List.iter
              (fun nt ->
                Queue.add nt queue;
                meter_add meter 1)
              rest;
            Some first
        end
  in
  op.pull <- next;
  op

(* Blocking nest-canonicalization: drains its input, re-nests, then
   streams the canonical tuples out. *)
let canonicalize_op schema order meter child =
  let op = make_op ~children:[ child ] "canonicalize" in
  let pending = ref None in
  let ensure () =
    match !pending with
    | Some items -> items
    | None ->
      let rec drain acc count =
        match pull_op child with
        | Some nt ->
          meter_add meter 1;
          drain (Nfr.add acc nt) (count + 1)
        | None -> (acc, count)
      in
      let drained, count = drain (Nfr.empty schema) 0 in
      let items = Nfr.ntuples (Nest.canonicalize drained order) in
      meter_sub meter count;
      meter_add meter (List.length items);
      pending := Some items;
      items
  in
  op.pull <-
    (fun () ->
      match ensure () with
      | [] -> None
      | nt :: rest ->
        pending := Some rest;
        meter_sub meter 1;
        Some nt);
  op

let one_tuple schema nt = Nfr.add (Nfr.empty schema) nt

(* Index nested-loop join: scan the smaller table (outer); for each
   outer tuple probe the inner table's inverted index with every value
   of one shared attribute, then join the fetched candidates directly
   (pairwise component intersection), always in (left, right)
   orientation so the result schema matches the logical evaluator's.
   Falls back to a block nested loop (inner side buffered once) when
   the schemas share no attribute — a Cartesian product. Distinct
   probe values of one outer tuple can fetch the same inner tuple
   twice; a per-outer-tuple set keyed on structural {!Ntuple} equality
   dedups them (the heap decodes a fresh tuple per probe, so physical
   equality never fires). *)
let join_op db meter left_name right_name =
  let left = find_table db left_name and right = find_table db right_name in
  let schema_l = Storage.Table.schema left in
  let schema_r = Storage.Table.schema right in
  let joined_schema = Schema.union schema_l schema_r in
  match Schema.common schema_l schema_r with
  | [] ->
    let outer_op = scan_op left left_name in
    let op =
      make_op ~children:[ outer_op ]
        (Printf.sprintf "product %s × %s" left_name right_name)
    in
    let inner = lazy (
      let collected = ref [] in
      Storage.Table.scan right ~stats:op.stats (fun nt ->
          meter_add meter 1;
          collected := nt :: !collected);
      Array.of_list (List.rev !collected))
    in
    let queue = Queue.create () in
    let rec next () =
      if not (Queue.is_empty queue) then begin
        meter_sub meter 1;
        Some (Queue.pop queue)
      end
      else
        match pull_op outer_op with
        | None -> None
        | Some left_nt ->
          Array.iter
            (fun right_nt ->
              let components =
                Ntuple.components left_nt @ Ntuple.components right_nt
              in
              Queue.add (Ntuple.of_sets_unchecked (Array.of_list components)) queue;
              meter_add meter 1)
            (Lazy.force inner);
          next ()
    in
    op.pull <- next;
    (op, joined_schema)
  | probe_attribute :: _ ->
    let outer, outer_name, inner, flipped =
      if Storage.Table.cardinality left <= Storage.Table.cardinality right then
        (left, left_name, right, false)
      else (right, right_name, left, true)
    in
    let position = Schema.position (Storage.Table.schema outer) probe_attribute in
    let outer_op = scan_op outer outer_name in
    let op =
      make_op ~children:[ outer_op ]
        (Printf.sprintf "inlj %s ⋈ %s (probe %s)" left_name right_name
           (Attribute.name probe_attribute))
    in
    let queue = Queue.create () in
    let rec next () =
      if not (Queue.is_empty queue) then begin
        meter_sub meter 1;
        Some (Queue.pop queue)
      end
      else
        match pull_op outer_op with
        | None -> None
        | Some outer_nt ->
          let seen = Ntuple_tbl.create 8 in
          Vset.fold
            (fun value () ->
              List.iter
                (fun inner_nt ->
                  if not (Ntuple_tbl.mem seen inner_nt) then begin
                    Ntuple_tbl.add seen inner_nt ();
                    let left_nt, right_nt =
                      if flipped then (inner_nt, outer_nt)
                      else (outer_nt, inner_nt)
                    in
                    let joined =
                      Nalgebra.natural_join
                        (one_tuple schema_l left_nt)
                        (one_tuple schema_r right_nt)
                    in
                    Nfr.iter
                      (fun nt ->
                        Queue.add nt queue;
                        meter_add meter 1)
                      joined
                  end)
                (Storage.Table.lookup inner ~stats:op.stats probe_attribute value))
            (Ntuple.component outer_nt position)
            ();
          next ()
    in
    op.pull <- next;
    (op, joined_schema)

(* ------------------------------------------------------------------ *)
(* Pipelines                                                           *)
(* ------------------------------------------------------------------ *)

type pipeline = {
  root : op;
  schema : Schema.t;
  order : Attribute.t list;
  predicates : Predicate.t list;  (* non-empty => collector re-canonicalizes *)
  meter : meter;
}

let build_pipeline db (s : Ast.select) =
  let meter = meter_create () in
  let with_filter schema source_op =
    match s.Ast.where with
    | None -> ([], source_op)
    | Some condition ->
      let predicates, contains = Compile.split_condition schema condition in
      if predicates = [] && contains = [] then ([], source_op)
      else
        ( predicates,
          filter_op schema ~contains ~predicates
            ~label:(Format.asprintf "%a" Ast.pp_condition condition)
            meter source_op )
  in
  match s.Ast.source with
  | Ast.From_table name ->
    let t = find_table db name in
    let schema = Storage.Table.schema t in
    let order = Storage.Table.nest_order t in
    let source_op =
      match chosen_path db s with
      | Via_scan -> scan_op t name
      | Via_index (attribute, value) -> probe_op t name attribute value
      | Via_range (attribute, lo, hi) -> range_op t name attribute lo hi
    in
    let predicates, root = with_filter schema source_op in
    { root; schema; order; predicates; meter }
  | Ast.From_join (left_name, right_name) ->
    let join, joined_schema = join_op db meter left_name right_name in
    let order = Schema.attributes joined_schema in
    let canonical = canonicalize_op joined_schema order meter join in
    let predicates, root = with_filter joined_schema canonical in
    { root; schema = joined_schema; order; predicates; meter }

type executed = {
  shaped : Nfr.t;  (* after projection / NEST / UNNEST *)
  filtered : Nfr.t;  (* after WHERE, before shaping *)
  root : op;  (* full tree, collector (and shape) included *)
  peak : int;
}

let run_select db (s : Ast.select) =
  (* Build under a Plan span so every operator's span (entered inside
     make_op) records as a child of the planning step. *)
  let pipeline =
    Obs.Span.with_span Obs.Span.Plan "build-pipeline" @@ fun _ ->
    build_pipeline db s
  in
  (* The collector (and shape) ops are created before their timed work
     so their span start times bracket what they actually did. *)
  let collector =
    make_op ~children:[ pipeline.root ]
      (if pipeline.predicates = [] then "collect" else "collect+canonicalize")
  in
  let start = Obs.Span.now () in
  let rec drain acc =
    match pull_op pipeline.root with
    | Some nt ->
      meter_add pipeline.meter 1;
      drain (Nfr.add acc nt)
    | None -> acc
  in
  let drained = drain (Nfr.empty pipeline.schema) in
  let filtered =
    if pipeline.predicates = [] then drained
    else Nest.canonicalize drained pipeline.order
  in
  collector.rows_out <- Nfr.cardinality filtered;
  Obs.Span.add_busy collector.span (Obs.Span.now () -. start);
  let shaping =
    s.Ast.columns <> None || s.Ast.nests <> [] || s.Ast.unnests <> []
  in
  let shape =
    if shaping then Some (make_op ~children:[ collector ] "shape (project/nest/unnest)")
    else None
  in
  let shape_start = Obs.Span.now () in
  let shaped = Compile.shape_select filtered ~order:pipeline.order s in
  let root =
    match shape with
    | None -> collector
    | Some shape ->
      shape.rows_out <- Nfr.cardinality shaped;
      Obs.Span.add_busy shape.span (Obs.Span.now () -. shape_start);
      shape
  in
  finish_ops root;
  db.last_ops <- profile_ops root;
  { shaped; filtered; root; peak = pipeline.meter.peak }

let select_for_condition table_name condition =
  {
    Ast.columns = None;
    source = Ast.From_table table_name;
    where = Some condition;
    nests = [];
    unnests = [];
  }

(* DML victim search rides the same operator pipeline as SELECT; the
   pipeline is fully drained before any mutation, so no cursor is live
   while the table changes. *)
let matching_tuples db table_name condition =
  let executed = run_select db (select_for_condition table_name condition) in
  (Relation.tuples (Nfr.flatten executed.filtered), executed.root)

let rec add_op_stats total op =
  Storage.Stats.add total op.stats;
  List.iter (add_op_stats total) op.children

(* ------------------------------------------------------------------ *)
(* EXPLAIN / EXPLAIN ANALYZE                                           *)
(* ------------------------------------------------------------------ *)

type op_metrics = {
  op_label : string;
  op_depth : int;
  op_rows : int;
  op_pages : int;
  op_records : int;
  op_bytes : int;
  op_probes : int;
  op_seconds : float;
}

type analyze_report = {
  operators : op_metrics list;
  peak_live : int;
  analyzed : Eval.result;
}

let rec flatten_ops depth op =
  {
    op_label = op.label;
    op_depth = depth;
    op_rows = op.rows_out;
    op_pages = op.stats.Storage.Stats.pages_read;
    op_records = op.stats.Storage.Stats.records_read;
    op_bytes = op.stats.Storage.Stats.bytes_read;
    op_probes = op.stats.Storage.Stats.index_probes;
    op_seconds = Obs.Span.busy op.span;
  }
  :: List.concat_map (flatten_ops (depth + 1)) op.children

let analyze_select db (s : Ast.select) =
  let executed = run_select db s in
  {
    operators = flatten_ops 0 executed.root;
    peak_live = executed.peak;
    analyzed = Eval.Rows executed.shaped;
  }

let stats_of_report report =
  let total = Storage.Stats.create () in
  List.iter
    (fun m ->
      total.Storage.Stats.pages_read <-
        total.Storage.Stats.pages_read + m.op_pages;
      total.Storage.Stats.records_read <-
        total.Storage.Stats.records_read + m.op_records;
      total.Storage.Stats.bytes_read <- total.Storage.Stats.bytes_read + m.op_bytes;
      total.Storage.Stats.index_probes <-
        total.Storage.Stats.index_probes + m.op_probes)
    report.operators;
  total

let render_analyze report =
  let buffer = Buffer.create 256 in
  let line fmt =
    Printf.ksprintf (fun msg -> Buffer.add_string buffer (msg ^ "\n")) fmt
  in
  line "physical plan (executed):";
  line "  %-44s %8s %7s %9s %8s %9s" "operator" "rows" "pages" "records"
    "probes" "ms";
  List.iter
    (fun m ->
      line "  %-44s %8d %7d %9d %8d %9.3f"
        (String.make (2 * m.op_depth) ' ' ^ m.op_label)
        m.op_rows m.op_pages m.op_records m.op_probes (m.op_seconds *. 1000.))
    report.operators;
  line "  peak live tuples: %d" report.peak_live;
  (match report.analyzed with
  | Eval.Rows nfr ->
    line "  result: %d fact(s) in %d NFR tuple(s)" (Nfr.expansion_size nfr)
      (Nfr.cardinality nfr)
  | Eval.Done _ -> ());
  String.trim (Buffer.contents buffer)

let explain_text db (s : Ast.select) =
  let buffer = Buffer.create 128 in
  let line fmt =
    Printf.ksprintf (fun msg -> Buffer.add_string buffer (msg ^ "\n")) fmt
  in
  line "physical plan:";
  (match chosen_path db s with
  | Via_scan -> line "  access: heap scan"
  | Via_index (attribute, value) ->
    line "  access: inverted-index probe %s ∋ %s" (Attribute.name attribute)
      (Value.to_string value)
  | Via_range (attribute, lo, hi) ->
    line "  access: B+-tree range %s in [%s, %s]" (Attribute.name attribute)
      (bound_text "-∞" lo) (bound_text "+∞" hi));
  (match s.Ast.where with
  | None -> ()
  | Some condition -> line "  residual filter: %s" (Format.asprintf "%a" Ast.pp_condition condition));
  (match s.Ast.columns with
  | None -> ()
  | Some names -> line "  project %s" (String.concat "," names));
  String.trim (Buffer.contents buffer)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let tuple_of_row schema row =
  if List.length row <> Schema.degree schema then
    error "expected %d values, got %d" (Schema.degree schema) (List.length row);
  match Tuple.make schema (List.map Compile.value_of_literal row) with
  | tuple -> tuple
  | exception Schema.Schema_error msg -> error "%s" msg

let type_of_name name =
  match Value.ty_of_name (String.lowercase_ascii name) with
  | Some ty -> ty
  | None -> error "unknown type %s" name

let rec exec db statement =
  let verb = Ast.statement_verb statement in
  Obs.Span.with_span (Obs.Span.Statement verb) verb @@ fun statement_span ->
  let stats = Storage.Stats.create () in
  let result =
    match statement with
    | Ast.Create (name, columns, order) ->
      let schema =
        match
          Schema.of_names (List.map (fun (n, ty) -> (n, type_of_name ty)) columns)
        with
        | schema -> schema
        | exception Schema.Schema_error msg -> error "%s" msg
      in
      let order_attrs =
        match order with
        | None -> Schema.attributes schema
        | Some names -> List.map (Compile.attribute_of schema) names
      in
      add_table db name (Storage.Table.create ~order:order_attrs schema);
      Eval.Done (Printf.sprintf "table %s created" name)
    | Ast.Drop name ->
      if not (String_map.mem name db.tables) then error "unknown table %s" name;
      Storage.Table.close (find_table db name);
      db.tables <- String_map.remove name db.tables;
      Eval.Done (Printf.sprintf "table %s dropped" name)
    | Ast.Insert (name, rows) ->
      let t = find_table db name in
      let schema = Storage.Table.schema t in
      let inserted =
        List.fold_left
          (fun count row ->
            if Storage.Table.insert t (tuple_of_row schema row) then count + 1
            else count)
          0 rows
      in
      Eval.Done (Printf.sprintf "%d row(s) inserted" inserted)
    | Ast.Delete_values (name, row) ->
      let t = find_table db name in
      let tuple = tuple_of_row (Storage.Table.schema t) row in
      (match Storage.Table.delete t tuple with
      | () -> Eval.Done "1 row deleted"
      | exception Update.Not_in_relation ->
        error "tuple %s is not in %s" (Format.asprintf "%a" Tuple.pp tuple) name)
    | Ast.Delete_where (name, condition) ->
      let t = find_table db name in
      let victims, search = matching_tuples db name condition in
      add_op_stats stats search;
      List.iter (fun tuple -> Storage.Table.delete t tuple) victims;
      Eval.Done (Printf.sprintf "%d row(s) deleted" (List.length victims))
    | Ast.Update_set (name, assignments, condition) ->
      let t = find_table db name in
      let schema = Storage.Table.schema t in
      let resolved =
        List.map
          (fun (column, literal) ->
            (Compile.attribute_of schema column, Compile.value_of_literal literal))
          assignments
      in
      let victims, search = matching_tuples db name condition in
      add_op_stats stats search;
      let image_of tuple =
        List.fold_left
          (fun tuple (attribute, value) ->
            Tuple.set_field schema tuple attribute value)
          tuple resolved
      in
      (* Insert each victim's image before deleting the victim, one
         pair at a time: a crash anywhere in the window leaves every
         victim present as itself or as its image — never silently
         lost, as the old delete-all-then-insert-all batches did.
         Assignments are constant, so an image colliding with another
         victim equals that victim's own (identity) image; identity
         pairs are skipped outright, which keeps the pairwise order
         equivalent to the batch semantics. *)
      List.iter
        (fun victim ->
          let image = image_of victim in
          if not (Tuple.equal image victim) then begin
            ignore (Storage.Table.insert t image);
            Storage.Table.delete t victim
          end)
        victims;
      Eval.Done (Printf.sprintf "%d row(s) updated" (List.length victims))
    | Ast.Select s ->
      let executed = run_select db s in
      add_op_stats stats executed.root;
      Eval.Rows executed.shaped
    | Ast.Select_count (source, condition) ->
      let select =
        { Ast.columns = None; source; where = condition; nests = []; unnests = [] }
      in
      let executed = run_select db select in
      add_op_stats stats executed.root;
      Eval.Done
        (Printf.sprintf "%d fact(s) in %d NFR tuple(s)"
           (Nfr.expansion_size executed.filtered)
           (Nfr.cardinality executed.filtered))
    | Ast.Explain s -> Eval.Done (explain_text db s)
    | Ast.Explain_analyze s ->
      let report = analyze_select db s in
      Storage.Stats.add stats (stats_of_report report);
      Eval.Done (render_analyze report)
    | Ast.Trace inner ->
      (* Run the statement under a trace scope — reusing the server's
         ambient one when present — and return its spans as rows. *)
      let run () =
        let _, inner_stats = exec db inner in
        Storage.Stats.add stats inner_stats
      in
      let trace =
        match Obs.Span.current_trace () with
        | Some trace ->
          run ();
          trace
        | None ->
          Obs.Span.in_trace (fun trace ->
              run ();
              trace)
      in
      Eval.Rows (Eval.rows_of_spans (Obs.Span.spans_of_trace trace))
    | Ast.Show name -> Eval.Rows (Storage.Table.snapshot (find_table db name))
  in
  Obs.Span.set_bytes statement_span stats.Storage.Stats.bytes_read;
  (result, stats)

let explain = explain_text

let exec_string db input =
  List.map (exec db) (Parser.parse_script input)
