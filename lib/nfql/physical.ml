open Relational
open Nfr_core

let error fmt = Compile.error fmt

module String_map = Map.Make (String)

module Ntuple_tbl = Hashtbl.Make (struct
  type t = Ntuple.t

  let equal = Ntuple.equal
  let hash = Ntuple.hash
end)

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

type bound = { b_value : Value.t; b_incl : bool }

type join_path = {
  jp_left : string;
  jp_right : string;
  jp_probe : Attribute.t option;  (* None: no shared attribute — product *)
  jp_outer : [ `Left | `Right ];
}

type access_path =
  | Via_scan
  | Via_index of Attribute.t * Value.t
  | Via_range of Attribute.t * bound option * bound option
  | Via_join of join_path

type candidate = {
  cand_path : access_path;
  cand_cost : float;
  cand_rows : float;
}

type plan = {
  plan_path : access_path;
  plan_rows : float;
  plan_candidates : candidate list;  (* empty on the legacy (no-stats) path *)
  plan_from_stats : bool;
}

type entry = {
  tbl : Storage.Table.t;
  mutable stats : Tablestats.t option;
  mutable writes : int;  (* since stats were last collected *)
}

type cache_slot = {
  slot_plan : plan;
  mutable slot_tick : int;  (* recency, for LRU eviction *)
}

(* One buffered write of an open transaction (flat-tuple level, the
   Sec. 4 unit). UPDATE decomposes into delete/insert pairs. *)
type txn_op =
  | Op_insert of Tuple.t
  | Op_delete of Tuple.t

(* A table as one transaction sees it: the committed NFR snapshotted at
   first touch (NFRs are persistent values, so this is O(1)) plus the
   transaction's own writes folded in, and the base commit sequence the
   first-committer-wins check validates against. *)
type txn_table = {
  tx_base_seq : int;
  tx_schema : Schema.t;
  tx_order : Attribute.t list;
  mutable tx_nfr : Nfr.t;
  mutable tx_ops : txn_op list;  (* newest first *)
}

type txn = {
  txn_id : int;
  mutable touched : txn_table String_map.t;
}

(* One replicated change, in commit order. [R_writes] is a committed
   group of base-table DML (the WAL-shipping payload: the same
   Insert/Delete entries the tables logged, already folded to their
   committed form); the others are DDL, shipped structurally so a
   replica replays them without reparsing statement text. *)
type repl_change =
  | R_writes of (string * Storage.Wal.entry list) list
  | R_create of { name : string; schema : Schema.t; order : Attribute.t list }
  | R_drop of string
  | R_create_view of { view : string; base : string; by : string list }
  | R_drop_view of string

type repl_event = {
  r_seq : int;  (* position in the primary's total commit order *)
  r_txid : int option;  (* Some for transactional groups *)
  r_time : float;  (* primary commit wall clock, for the lag gauge *)
  r_change : repl_change;
}

type db = {
  mutable tables : entry String_map.t;
  (* Pre-order (label, rows_out) of the last executed operator tree —
     the slow-query log snapshots it without re-running anything. *)
  mutable last_ops : (string * int) list;
  mutable last_est : (float * int) option;
  (* Statistics generation: bumped by ANALYZE, DDL and auto-refresh.
     Part of every plan-cache key, so stale plans miss naturally. *)
  mutable generation : int;
  mutable auto_threshold : int;
  cache : (Ast.select * int * int, cache_slot) Hashtbl.t;
  mutable cache_tick : int;
  mutable next_txid : int;
  mutable active : txn list;  (* open transactions across all sessions *)
  mutable default_session : session option;
  (* Materialized canonical views over the base tables, maintained
     incrementally at commit points; replaced wholesale by
     {!attach_views_wal} when the server recovers a durable catalog. *)
  mutable views : Views.Catalog.t;
  (* Where per-commit view deltas go (the server installs a queue that
     the select loop fans out to CDC subscribers). *)
  mutable cdc_sink : (Views.Catalog.event -> unit) option;
  (* The global commit manifest (_commit.wal): the single commit point
     for multi-table transactions. Per-table Txn_commit records are
     provisional once this is attached; a transaction is durable iff
     its manifest record is synced. *)
  mutable manifest : Storage.Manifest.t option;
  (* Whether the commit path fsyncs the manifest itself (embedded
     callers) or leaves it to the server's group-commit [sync_wal]. *)
  mutable manifest_synchronous : bool;
  (* Commit-ordered replication stream: every committed change is
     handed to the sink (the server queues them and ships to replica
     subscribers after the covering fsync). *)
  mutable repl_sink : (repl_event -> unit) option;
  mutable repl_seq : int;
  (* [Some reason] on a read replica: DML, DDL and BEGIN are refused
     with {!Read_only} until promotion clears it. The replication
     apply path writes through {!Storage.Table} directly and is not
     subject to it. *)
  mutable read_only : string option;
  (* Read-only system tables (_metrics, _slow_queries, _traces):
     provider closures installed by the server, resolved like views but
     re-materialized on every statement. *)
  sys : Systab.registry;
}

(* One client's execution context: the shared database plus that
   client's open transaction, if any. The server gives each connection
   its own session; the CLI and tests that call {!exec} directly share
   the database's default session. *)
and session = {
  sdb : db;
  mutable txn : txn option;
}

exception Conflict of string
exception Read_only of string

let cache_capacity = 128
let registry () = Obs.Registry.global

let create () =
  {
    tables = String_map.empty;
    last_ops = [];
    last_est = None;
    generation = 0;
    auto_threshold = 128;
    cache = Hashtbl.create 64;
    cache_tick = 0;
    next_txid = 1;
    active = [];
    default_session = None;
    views = Views.Catalog.create ();
    cdc_sink = None;
    manifest = None;
    manifest_synchronous = true;
    repl_sink = None;
    repl_seq = 0;
    read_only = None;
    sys = Systab.create ();
  }

let session db = { sdb = db; txn = None }

let default_session db =
  match db.default_session with
  | Some s -> s
  | None ->
    let s = session db in
    db.default_session <- Some s;
    s

let in_txn session = session.txn <> None
let session_db session = session.sdb
let active_txns db = List.length db.active

let last_profile db = db.last_ops
let last_estimate db = db.last_est
let generation db = db.generation
let set_auto_analyze_threshold db n = db.auto_threshold <- max 1 n
let bump_generation db = db.generation <- db.generation + 1

let is_view db name = Views.Catalog.mem db.views name
let catalog db = db.views
let set_cdc_sink db sink = db.cdc_sink <- Some sink
let set_repl_sink db sink = db.repl_sink <- Some sink
let repl_seq db = db.repl_seq
let read_only db = db.read_only

let set_read_only db reason = db.read_only <- reason

let require_primary db =
  match db.read_only with
  | Some reason -> raise (Read_only reason)
  | None -> ()

(* Install the global commit manifest. From here on every transaction
   commit appends (and, when [synchronous], fsyncs) a manifest record
   after its per-table commits; [sync_wal] orders the manifest sync
   after the table syncs. Txid allocation restarts above the largest
   manifest txid so a recycled txid can never match a stale record. *)
let attach_manifest ?(synchronous = true) db manifest =
  db.manifest <- Some manifest;
  db.manifest_synchronous <- synchronous;
  db.next_txid <- max db.next_txid (Storage.Manifest.max_txid manifest + 1)

let manifest db = db.manifest

let now_s () = Unix.gettimeofday ()

let emit_repl db ?txid change =
  match db.repl_sink with
  | None -> ()
  | Some sink ->
    db.repl_seq <- db.repl_seq + 1;
    sink { r_seq = db.repl_seq; r_txid = txid; r_time = now_s (); r_change = change }

let entries_of_view_ops ops =
  List.map
    (function
      | Views.Catalog.Ins t -> Storage.Wal.Insert t
      | Views.Catalog.Del t -> Storage.Wal.Delete t)
    ops
let is_system db name = Systab.find db.sys name <> None
let register_system_table db name provider = Systab.register db.sys name provider
let system_table_names db = Systab.names db.sys

(* The typed write guard: DML must name a base table, never a view or a
   system table. *)
let require_writable db name =
  if is_view db name then error "%s is a view: views are read-only" name;
  if is_system db name then error "%s" (Systab.read_only_error name)

let add_table db name table =
  if Systab.is_system_name name then error "%s" (Systab.reserved_error name);
  if String_map.mem name db.tables then error "table %s already exists" name;
  if is_view db name then error "view %s already exists" name;
  db.tables <-
    String_map.add name { tbl = table; stats = None; writes = 0 } db.tables;
  bump_generation db

let table db name =
  Option.map (fun e -> e.tbl) (String_map.find_opt name db.tables)

let table_stats db name =
  Option.bind (String_map.find_opt name db.tables) (fun e -> e.stats)

let find_entry db name =
  match String_map.find_opt name db.tables with
  | Some e -> e
  | None -> error "unknown table %s" name

let find_table db name = (find_entry db name).tbl

let iter_tables db f = String_map.iter (fun name e -> f name e.tbl) db.tables

let wal_unsynced db =
  String_map.fold
    (fun _ e acc -> acc + Storage.Table.wal_unsynced e.tbl)
    db.tables
    (match db.manifest with
    | Some manifest -> Storage.Manifest.unsynced_bytes manifest
    | None -> 0)

(* Durability order: table WALs first, manifest last. A power cut
   anywhere inside this sequence can only lose the manifest record —
   and a transaction without its manifest record rolls back in every
   table, so acknowledgements released after the full sync never cover
   a half-durable commit. *)
let sync_wal db =
  String_map.iter (fun _ e -> Storage.Table.sync_wal e.tbl) db.tables;
  Option.iter Storage.Manifest.sync db.manifest

(* Fold one committed group of base-table writes into the dependent
   views (Theorem A-4: a bounded number of compositions per op, never
   a renest) and hand the per-view deltas to the CDC sink. Called only
   at commit points — autocommit success or transaction commit — so
   views and subscribers never observe an uncommitted overlay. *)
let maintain_views db ~base ops =
  if ops <> [] && Views.Catalog.has_views_on db.views ~base then begin
    let events =
      Views.Catalog.apply db.views ~base
        ~base_nfr:(lazy (Storage.Table.snapshot (find_table db base)))
        ops
    in
    match db.cdc_sink with
    | None -> ()
    | Some sink -> List.iter sink events
  end

(* Swap in a durable catalog recovered from [path]: definitions are
   replayed from their own CRC-framed log (torn tails trimmed), then
   each surviving view is rematerialized by full renest of its
   recovered base — the DDL/salvage fallback. *)
let attach_views_wal db ~path =
  Views.Catalog.close db.views;
  db.views <-
    Views.Catalog.load ~wal_path:path
      ~resolve:(fun base ->
        Option.map Storage.Table.snapshot (table db base))
      ()

let collect_stats entry =
  let stats = Tablestats.collect (Storage.Table.snapshot entry.tbl) in
  entry.stats <- Some stats;
  entry.writes <- 0;
  stats

(* Auto-refresh: once a table has been ANALYZEd, enough writes since
   the last collection trigger a re-collect and a generation bump.
   Tables never analyzed stay on the legacy planner until asked. *)
let note_writes db entry n =
  if n > 0 then begin
    entry.writes <- entry.writes + n;
    if entry.stats <> None && entry.writes >= db.auto_threshold then begin
      ignore (collect_stats entry);
      bump_generation db;
      Obs.Registry.incr (registry ()) "planner.auto_analyze"
    end
  end

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

(* Abstract cost units: one heap page fetch = 1.0. Decoding a record
   is an order of magnitude cheaper; an index descent costs about two
   pages; fetching one indexed group about one. *)
let c_page = 1.0
let c_rec = 0.1
let c_probe = 2.0
let c_fetch = 1.0

(* A page resident in the table's buffer pool costs a tenth of a cold
   fetch; the observed hit rate interpolates between the two. Scans
   stay at full price: they touch every page and churn the pool, so
   their caching benefit is transient, while probes re-touch the same
   hot pages — this is what flips a repeated-probe workload from a
   cold scan to a cached probe. *)
let c_pooled_fetch = 0.1 *. c_fetch

let effective_fetch tbl =
  let rate = Storage.Table.pool_hit_rate tbl in
  (c_fetch *. (1. -. rate)) +. (c_pooled_fetch *. rate)

let scan_candidate t =
  let live = Storage.Table.live_records t in
  let dead = Storage.Table.dead_records t in
  {
    cand_path = Via_scan;
    cand_cost =
      (float_of_int (Storage.Table.pages t) *. c_page)
      +. (float_of_int (live + dead) *. c_rec);
    cand_rows = float_of_int (Storage.Table.cardinality t);
  }

(* A probe pays for every posting entry, tombstoned ones included —
   the inverted index never prunes, so a delete-churned posting list
   really is more expensive than the live groups it yields. The row
   estimate uses the Def. 6 class as a selectivity prior: a fixed
   (1:1 / n:1) attribute's value sits in at most one group. For a
   recurring attribute the raw posting size is an upper bound that
   over-counts on churned tables (every merge of a group leaves a
   stale rid behind); that bias is deliberate — it only ever pushes
   hot values toward the scan, and the tombstone fetches are paid
   regardless. *)
let probe_candidate t stats attribute value =
  let posting = Storage.Table.posting_size t attribute value in
  let rows = float_of_int (Storage.Table.cardinality t) in
  let est =
    match Option.bind stats (fun s -> Tablestats.find s attribute) with
    | Some a when a.Tablestats.a_fixed -> Float.min 1. rows
    | Some _ | None -> Float.min (float_of_int posting) rows
  in
  {
    cand_path = Via_index (attribute, value);
    cand_cost = c_probe +. (float_of_int posting *. effective_fetch t);
    cand_rows = est;
  }

(* A range is priced from live statistics (the B+-tree prunes on
   delete, so tombstones never inflate it — which is exactly why an
   equality can beat the inverted index on a churned table): a point
   range estimates from the posting distribution, open/closed
   intervals fall back to textbook fractions. *)
let range_candidate t stats attribute lo hi =
  let rows = float_of_int (Storage.Table.cardinality t) in
  let attr_stats = Option.bind stats (fun s -> Tablestats.find s attribute) in
  let est =
    match lo, hi with
    | Some l, Some h when Value.compare l.b_value h.b_value = 0 -> (
      match attr_stats with
      | Some a when a.Tablestats.a_fixed -> Float.min 1. rows
      | Some a -> Float.min (Float.max 1. a.Tablestats.a_mean_posting) rows
      | None -> Float.min 1. rows)
    | Some _, Some _ -> 0.25 *. rows
    | Some _, None | None, Some _ -> 0.33 *. rows
    | None, None -> rows
  in
  {
    cand_path = Via_range (attribute, lo, hi);
    cand_cost = c_probe +. (est *. effective_fetch t);
    cand_rows = est;
  }

(* ------------------------------------------------------------------ *)
(* Access-path choice                                                  *)
(* ------------------------------------------------------------------ *)

(* An equality conjunct [attr = const] yields an index probe. *)
let equality_probe = function
  | Predicate.Compare (Predicate.Eq, Predicate.Field attribute, Predicate.Const value)
  | Predicate.Compare (Predicate.Eq, Predicate.Const value, Predicate.Field attribute)
    ->
    Some (attribute, value)
  | Predicate.Compare _ | Predicate.True | Predicate.False | Predicate.And _
  | Predicate.Or _ | Predicate.Not _ ->
    None

(* Bounds a conjunct imposes on [attribute], with inclusivity: a
   strict comparison produces a strict bound, which the B+-tree range
   honors (the boundary group is never fetched). Over-approximation is
   still fine — the exact predicate runs afterwards. *)
let bounds_on attribute = function
  | Predicate.Compare (op, Predicate.Field a, Predicate.Const v)
    when Attribute.equal a attribute -> (
    match op with
    | Predicate.Le -> (None, Some { b_value = v; b_incl = true })
    | Predicate.Lt -> (None, Some { b_value = v; b_incl = false })
    | Predicate.Ge -> (Some { b_value = v; b_incl = true }, None)
    | Predicate.Gt -> (Some { b_value = v; b_incl = false }, None)
    | Predicate.Eq ->
      (Some { b_value = v; b_incl = true }, Some { b_value = v; b_incl = true })
    | Predicate.Neq -> (None, None))
  | Predicate.Compare (op, Predicate.Const v, Predicate.Field a)
    when Attribute.equal a attribute -> (
    match op with
    | Predicate.Le -> (Some { b_value = v; b_incl = true }, None)
    | Predicate.Lt -> (Some { b_value = v; b_incl = false }, None)
    | Predicate.Ge -> (None, Some { b_value = v; b_incl = true })
    | Predicate.Gt -> (None, Some { b_value = v; b_incl = false })
    | Predicate.Eq ->
      (Some { b_value = v; b_incl = true }, Some { b_value = v; b_incl = true })
    | Predicate.Neq -> (None, None))
  | Predicate.Compare _ | Predicate.True | Predicate.False | Predicate.And _
  | Predicate.Or _ | Predicate.Not _ ->
    (None, None)

(* Intersect bounds; at equal endpoints the strict bound wins. *)
let tighter keep a b =
  match a, b with
  | None, other | other, None -> other
  | Some x, Some y ->
    let c = Value.compare x.b_value y.b_value in
    if c = 0 then Some { x with b_incl = x.b_incl && y.b_incl }
    else Some (if keep c then x else y)

let fold_bounds ordered predicates =
  List.fold_left
    (fun (lo, hi) predicate ->
      let plo, phi = bounds_on ordered predicate in
      (tighter (fun c -> c > 0) lo plo, tighter (fun c -> c < 0) hi phi))
    (None, None) predicates

let singleton_plan ~from_stats c =
  {
    plan_path = c.cand_path;
    plan_rows = c.cand_rows;
    plan_candidates = [];
    plan_from_stats = from_stats;
  }

let cheapest candidates =
  List.fold_left
    (fun best c -> if c.cand_cost < best.cand_cost then c else best)
    (List.hd candidates) (List.tl candidates)

let plan_table db name (s : Ast.select) =
  let entry = find_entry db name in
  let t = entry.tbl in
  let schema = Storage.Table.schema t in
  match s.Ast.where with
  | None -> singleton_plan ~from_stats:(entry.stats <> None) (scan_candidate t)
  | Some condition -> (
    let predicates, contains = Compile.split_condition schema condition in
    let probes =
      List.sort
        (fun (attr_a, val_a) (attr_b, val_b) ->
          Int.compare
            (Storage.Table.posting_size t attr_a val_a)
            (Storage.Table.posting_size t attr_b val_b))
        (contains @ List.filter_map equality_probe predicates)
    in
    let range =
      match Storage.Table.ordered_attribute t with
      | None -> None
      | Some ordered -> (
        match fold_bounds ordered predicates with
        | None, None -> None
        | lo, hi -> Some (ordered, lo, hi))
    in
    match entry.stats with
    | None -> (
      (* Never analyzed: the legacy first-fit ranking — cheapest
         posting probe, else a range on the ordered attribute, else a
         scan. ANALYZE is what turns costing on. *)
      match probes with
      | (attribute, value) :: _ ->
        singleton_plan ~from_stats:false (probe_candidate t None attribute value)
      | [] -> (
        match range with
        | Some (ordered, lo, hi) ->
          singleton_plan ~from_stats:false (range_candidate t None ordered lo hi)
        | None -> singleton_plan ~from_stats:false (scan_candidate t)))
    | Some stats ->
      (* Cost-based: every probe, the (possibly point) range on the
         ordered attribute — so an equality competes as
         [Via_range (Some v, Some v)] too — and the scan. Ties keep
         list order: probes, range, scan. *)
      let candidates =
        List.map (fun (a, v) -> probe_candidate t (Some stats) a v) probes
        @ (match range with
          | Some (ordered, lo, hi) ->
            [ range_candidate t (Some stats) ordered lo hi ]
          | None -> [])
        @ [ scan_candidate t ]
      in
      let best = cheapest candidates in
      {
        plan_path = best.cand_path;
        plan_rows = best.cand_rows;
        plan_candidates = candidates;
        plan_from_stats = true;
      })

(* Mean number of distinct values one group carries on [attribute]:
   total (value, group) occurrences over groups. *)
let values_per_group stats attribute =
  match Tablestats.find stats attribute with
  | Some a when stats.Tablestats.s_rows > 0 ->
    float_of_int a.Tablestats.a_distinct
    *. a.Tablestats.a_mean_posting
    /. float_of_int stats.Tablestats.s_rows
  | Some _ | None -> 1.

let mean_posting stats attribute =
  match Tablestats.find stats attribute with
  | Some a -> Float.max 1. a.Tablestats.a_mean_posting
  | None -> 1.

(* One orientation of the index nested-loop join: scan [outer], probe
   the inner index once per outer value on [attribute]. *)
let join_candidate db left_name right_name attribute side =
  let outer_name, inner_name =
    match side with
    | `Left -> (left_name, right_name)
    | `Right -> (right_name, left_name)
  in
  let outer = find_entry db outer_name and inner = find_entry db inner_name in
  match outer.stats, inner.stats with
  | Some os, Some is ->
    let outer_rows = float_of_int (Storage.Table.cardinality outer.tbl) in
    let inner_rows = float_of_int (Storage.Table.cardinality inner.tbl) in
    let probes = outer_rows *. values_per_group os attribute in
    let fanout = mean_posting is attribute in
    Some
      {
        cand_path =
          Via_join
            {
              jp_left = left_name;
              jp_right = right_name;
              jp_probe = Some attribute;
              jp_outer = side;
            };
        cand_cost =
          (scan_candidate outer.tbl).cand_cost
          +. (probes *. (c_probe +. (fanout *. effective_fetch inner.tbl)));
        cand_rows = Float.min (probes *. fanout) (outer_rows *. inner_rows);
      }
  | _ -> None

let plan_join db left_name right_name =
  let le = find_entry db left_name and re = find_entry db right_name in
  let lrows = float_of_int (Storage.Table.cardinality le.tbl) in
  let rrows = float_of_int (Storage.Table.cardinality re.tbl) in
  match
    Schema.common (Storage.Table.schema le.tbl) (Storage.Table.schema re.tbl)
  with
  | [] ->
    {
      plan_path =
        Via_join
          {
            jp_left = left_name;
            jp_right = right_name;
            jp_probe = None;
            jp_outer = `Left;
          };
      plan_rows = lrows *. rrows;
      plan_candidates = [];
      plan_from_stats = false;
    }
  | common -> (
    let costed =
      List.concat_map
        (fun attribute ->
          List.filter_map
            (fun side -> join_candidate db left_name right_name attribute side)
            [ `Left; `Right ])
        common
    in
    match costed with
    | [] ->
      (* Legacy (a side lacks stats): smaller table outer, first
         common attribute as the probe. *)
      {
        plan_path =
          Via_join
            {
              jp_left = left_name;
              jp_right = right_name;
              jp_probe = Some (List.hd common);
              jp_outer = (if lrows <= rrows then `Left else `Right);
            };
        plan_rows = Float.max lrows rrows;
        plan_candidates = [];
        plan_from_stats = false;
      }
    | _ ->
      let best = cheapest costed in
      {
        plan_path = best.cand_path;
        plan_rows = best.cand_rows;
        plan_candidates = costed;
        plan_from_stats = true;
      })

let plan_uncached db (s : Ast.select) =
  match s.Ast.source with
  | Ast.From_table name -> plan_table db name s
  | Ast.From_join (left_name, right_name) -> plan_join db left_name right_name

(* Buffer-pool hit rates quantized into five 20% buckets: enough for
   a warming pool to reprice cached plans, coarse enough that the
   cache still hits between consecutive identical queries. *)
let pool_bucket tbl =
  min 4 (int_of_float (Storage.Table.pool_hit_rate tbl *. 5.))

let select_pool_bucket db (s : Ast.select) =
  let bucket name =
    match table db name with Some tbl -> pool_bucket tbl | None -> 0
  in
  match s.Ast.source with
  | Ast.From_table name -> bucket name
  | Ast.From_join (left_name, right_name) ->
    bucket left_name + (5 * bucket right_name)

(* LRU plan cache. The key is the select's structural value (pure
   data, so generic hashing is sound) plus the statistics generation
   and the source tables' pool-hit-rate bucket: ANALYZE, DDL and
   auto-refresh bump the generation, and a pool warming past a bucket
   boundary changes the key, so plans priced against older statistics
   or a colder cache simply stop matching and age out of the
   fixed-capacity table. *)
let plan db (s : Ast.select) =
  let key = (s, db.generation, select_pool_bucket db s) in
  db.cache_tick <- db.cache_tick + 1;
  match Hashtbl.find_opt db.cache key with
  | Some slot ->
    slot.slot_tick <- db.cache_tick;
    Obs.Registry.incr (registry ()) "planner.cache_hit";
    slot.slot_plan
  | None ->
    Obs.Registry.incr (registry ()) "planner.cache_miss";
    let built = plan_uncached db s in
    if Hashtbl.length db.cache >= cache_capacity then begin
      let victim =
        Hashtbl.fold
          (fun k slot acc ->
            match acc with
            | Some (_, best) when best <= slot.slot_tick -> acc
            | _ -> Some (k, slot.slot_tick))
          db.cache None
      in
      match victim with
      | Some (k, _) -> Hashtbl.remove db.cache k
      | None -> ()
    end;
    Hashtbl.add db.cache key { slot_plan = built; slot_tick = db.cache_tick };
    built

let chosen_path db (s : Ast.select) = (plan db s).plan_path

(* ------------------------------------------------------------------ *)
(* Pull-based operator tree                                            *)
(* ------------------------------------------------------------------ *)

(* Peak-live-tuple meter: every operator that buffers decoded tuples
   (filter queues, join queues, blocking canonicalize, the final
   collector) registers what it holds, so [peak] is the high-water
   mark of tuples simultaneously alive during one statement — the
   number a materializing executor would push to O(table). *)
type meter = {
  mutable live : int;
  mutable peak : int;
}

let meter_create () = { live = 0; peak = 0 }

let meter_add m n =
  m.live <- m.live + n;
  if m.live > m.peak then m.peak <- m.live

let meter_sub m n = m.live <- m.live - n

(* One node of the operator tree. [pull] returns the next tuple or
   [None] when exhausted; [stats] charges only this operator's own
   storage touches. Timing lives on the operator's {!Obs.Span}: each
   pull adds its elapsed wall clock to the span's busy time, inclusive
   of its inputs (a parent's pull calls its children's pulls inside
   its own clock). When a trace scope is open the spans land in the
   ring as children of the enclosing Plan span, so EXPLAIN ANALYZE and
   TRACE read the very same clocks. *)
type op = {
  label : string;
  stats : Storage.Stats.t;
  span : Obs.Span.t;
  mutable rows_out : int;
  mutable est : float option;  (* planner's row estimate, leaves only *)
  children : op list;
  mutable pull : unit -> Ntuple.t option;
}

let make_op ?(children = []) label =
  {
    label;
    stats = Storage.Stats.create ();
    span = Obs.Span.enter (Obs.Span.Operator label) label;
    rows_out = 0;
    est = None;
    children;
    pull = (fun () -> None);
  }

let pull_op op =
  let start = Obs.Span.now () in
  let result = op.pull () in
  Obs.Span.add_busy op.span (Obs.Span.now () -. start);
  (match result with
  | Some _ -> op.rows_out <- op.rows_out + 1
  | None -> ());
  result

(* Seal the tree's spans once the statement is done: copy each
   operator's row/byte tallies onto its span and mark it ended. *)
let rec finish_ops op =
  Obs.Span.set_rows op.span op.rows_out;
  Obs.Span.set_bytes op.span op.stats.Storage.Stats.bytes_read;
  Obs.Span.finish op.span;
  List.iter finish_ops op.children

let rec profile_ops op =
  (op.label, op.rows_out) :: List.concat_map profile_ops op.children

let scan_op t name =
  let op = make_op (Printf.sprintf "heap-scan %s" name) in
  let cursor = lazy (Storage.Table.scan_cursor t ~stats:op.stats) in
  op.pull <- (fun () -> (Lazy.force cursor) ());
  op

let probe_op t name attribute value =
  let op =
    make_op
      (Printf.sprintf "index-probe %s (%s ∋ %s)" name (Attribute.name attribute)
         (Value.to_string value))
  in
  let cursor =
    lazy (Storage.Table.lookup_cursor t ~stats:op.stats attribute value)
  in
  op.pull <- (fun () -> (Lazy.force cursor) ());
  op

let bound_text infinity = function
  | Some b -> Value.to_string b.b_value
  | None -> infinity

let lo_bracket = function
  | Some { b_incl = false; _ } -> "("
  | Some _ | None -> "["

let hi_bracket = function
  | Some { b_incl = false; _ } -> ")"
  | Some _ | None -> "]"

let range_op t name attribute lo hi =
  let op =
    make_op
      (Printf.sprintf "btree-range %s (%s in %s%s, %s%s)" name
         (Attribute.name attribute) (lo_bracket lo) (bound_text "-∞" lo)
         (bound_text "+∞" hi) (hi_bracket hi))
  in
  let cursor =
    lazy
      (Storage.Table.range_cursor t ~stats:op.stats
         ?lo:(Option.map (fun b -> b.b_value) lo)
         ?hi:(Option.map (fun b -> b.b_value) hi)
         ?lo_incl:(Option.map (fun b -> b.b_incl) lo)
         ?hi_incl:(Option.map (fun b -> b.b_incl) hi)
         ())
  in
  op.pull <- (fun () -> (Lazy.force cursor) ());
  op

(* Streaming WHERE: tuple-level CONTAINS checks on the stored grouping
   first, then the expansion-level predicates via
   {!Nalgebra.select_tuple} (componentwise shrink, or per-tuple
   expansion for correlated predicates). Predicates may turn one input
   tuple into several output tuples; the extras wait in a queue. The
   final re-canonicalization (when predicates exist) happens once, in
   the collector — {!Nalgebra.select_tuple}'s contract makes that
   equivalent to {!Compile.apply_where}. *)
let filter_op schema ~contains ~predicates ~label meter child =
  let op = make_op ~children:[ child ] (Printf.sprintf "filter %s" label) in
  let contains_positions =
    List.map
      (fun (attribute, value) -> (Schema.position schema attribute, value))
      contains
  in
  let keeps nt =
    List.for_all
      (fun (position, value) -> Vset.mem value (Ntuple.component nt position))
      contains_positions
  in
  let select_tuple predicate nt =
    match Nalgebra.select_tuple schema predicate nt with
    | nts -> nts
    | exception Invalid_argument msg -> error "%s" msg
  in
  let queue = Queue.create () in
  let rec next () =
    if not (Queue.is_empty queue) then begin
      meter_sub meter 1;
      Some (Queue.pop queue)
    end
    else
      match pull_op child with
      | None -> None
      | Some nt ->
        if not (keeps nt) then next ()
        else begin
          let survivors =
            List.fold_left
              (fun nts predicate -> List.concat_map (select_tuple predicate) nts)
              [ nt ] predicates
          in
          match survivors with
          | [] -> next ()
          | first :: rest ->
            List.iter
              (fun nt ->
                Queue.add nt queue;
                meter_add meter 1)
              rest;
            Some first
        end
  in
  op.pull <- next;
  op

(* Blocking nest-canonicalization: drains its input, re-nests, then
   streams the canonical tuples out. *)
let canonicalize_op schema order meter child =
  let op = make_op ~children:[ child ] "canonicalize" in
  let pending = ref None in
  let ensure () =
    match !pending with
    | Some items -> items
    | None ->
      let rec drain acc count =
        match pull_op child with
        | Some nt ->
          meter_add meter 1;
          drain (Nfr.add acc nt) (count + 1)
        | None -> (acc, count)
      in
      let drained, count = drain (Nfr.empty schema) 0 in
      let items = Nfr.ntuples (Nest.canonicalize drained order) in
      meter_sub meter count;
      meter_add meter (List.length items);
      pending := Some items;
      items
  in
  op.pull <-
    (fun () ->
      match ensure () with
      | [] -> None
      | nt :: rest ->
        pending := Some rest;
        meter_sub meter 1;
        Some nt);
  op

let one_tuple schema nt = Nfr.add (Nfr.empty schema) nt

(* Index nested-loop join along a planned {!join_path}: scan the
   planner's outer side; for each outer tuple probe the inner table's
   inverted index with every value of the probe attribute, then join
   the fetched candidates directly (pairwise component intersection),
   always in (left, right) orientation so the result schema matches
   the logical evaluator's. A [jp_probe = None] path is a block nested
   loop (inner side buffered once) — a Cartesian product. Distinct
   probe values of one outer tuple can fetch the same inner tuple
   twice; a per-outer-tuple set keyed on structural {!Ntuple} equality
   dedups them (the heap decodes a fresh tuple per probe, so physical
   equality never fires). *)
let join_op db meter jp =
  let left = find_table db jp.jp_left and right = find_table db jp.jp_right in
  let schema_l = Storage.Table.schema left in
  let schema_r = Storage.Table.schema right in
  let joined_schema = Schema.union schema_l schema_r in
  match jp.jp_probe with
  | None ->
    let outer_op = scan_op left jp.jp_left in
    let op =
      make_op ~children:[ outer_op ]
        (Printf.sprintf "product %s × %s" jp.jp_left jp.jp_right)
    in
    let inner = lazy (
      let collected = ref [] in
      Storage.Table.scan right ~stats:op.stats (fun nt ->
          meter_add meter 1;
          collected := nt :: !collected);
      Array.of_list (List.rev !collected))
    in
    let queue = Queue.create () in
    let rec next () =
      if not (Queue.is_empty queue) then begin
        meter_sub meter 1;
        Some (Queue.pop queue)
      end
      else
        match pull_op outer_op with
        | None -> None
        | Some left_nt ->
          Array.iter
            (fun right_nt ->
              let components =
                Ntuple.components left_nt @ Ntuple.components right_nt
              in
              Queue.add (Ntuple.of_sets_unchecked (Array.of_list components)) queue;
              meter_add meter 1)
            (Lazy.force inner);
          next ()
    in
    op.pull <- next;
    (op, joined_schema)
  | Some probe_attribute ->
    let outer, outer_name, inner, flipped =
      match jp.jp_outer with
      | `Left -> (left, jp.jp_left, right, false)
      | `Right -> (right, jp.jp_right, left, true)
    in
    let position = Schema.position (Storage.Table.schema outer) probe_attribute in
    let outer_op = scan_op outer outer_name in
    let op =
      make_op ~children:[ outer_op ]
        (Printf.sprintf "inlj %s ⋈ %s (probe %s, outer %s)" jp.jp_left
           jp.jp_right
           (Attribute.name probe_attribute)
           outer_name)
    in
    let queue = Queue.create () in
    let rec next () =
      if not (Queue.is_empty queue) then begin
        meter_sub meter 1;
        Some (Queue.pop queue)
      end
      else
        match pull_op outer_op with
        | None -> None
        | Some outer_nt ->
          let seen = Ntuple_tbl.create 8 in
          Vset.fold
            (fun value () ->
              List.iter
                (fun inner_nt ->
                  if not (Ntuple_tbl.mem seen inner_nt) then begin
                    Ntuple_tbl.add seen inner_nt ();
                    let left_nt, right_nt =
                      if flipped then (inner_nt, outer_nt)
                      else (outer_nt, inner_nt)
                    in
                    let joined =
                      Nalgebra.natural_join
                        (one_tuple schema_l left_nt)
                        (one_tuple schema_r right_nt)
                    in
                    Nfr.iter
                      (fun nt ->
                        Queue.add nt queue;
                        meter_add meter 1)
                      joined
                  end)
                (Storage.Table.lookup inner ~stats:op.stats probe_attribute value))
            (Ntuple.component outer_nt position)
            ();
          next ()
    in
    op.pull <- next;
    (op, joined_schema)

(* ------------------------------------------------------------------ *)
(* Pipelines                                                           *)
(* ------------------------------------------------------------------ *)

type pipeline = {
  root : op;
  leaf : op;  (* the access-path operator the plan's estimate is for *)
  the_plan : plan;
  schema : Schema.t;
  order : Attribute.t list;
  predicates : Predicate.t list;  (* non-empty => collector re-canonicalizes *)
  meter : meter;
}

let build_pipeline db (s : Ast.select) =
  let meter = meter_create () in
  let the_plan = plan db s in
  let with_filter schema source_op =
    match s.Ast.where with
    | None -> ([], source_op)
    | Some condition ->
      let predicates, contains = Compile.split_condition schema condition in
      if predicates = [] && contains = [] then ([], source_op)
      else
        ( predicates,
          filter_op schema ~contains ~predicates
            ~label:(Format.asprintf "%a" Ast.pp_condition condition)
            meter source_op )
  in
  match s.Ast.source with
  | Ast.From_table name ->
    let t = find_table db name in
    let schema = Storage.Table.schema t in
    let order = Storage.Table.nest_order t in
    let source_op =
      match the_plan.plan_path with
      | Via_scan -> scan_op t name
      | Via_index (attribute, value) -> probe_op t name attribute value
      | Via_range (attribute, lo, hi) -> range_op t name attribute lo hi
      | Via_join _ -> assert false
    in
    source_op.est <- Some the_plan.plan_rows;
    let predicates, root = with_filter schema source_op in
    { root; leaf = source_op; the_plan; schema; order; predicates; meter }
  | Ast.From_join _ ->
    let jp =
      match the_plan.plan_path with
      | Via_join jp -> jp
      | Via_scan | Via_index _ | Via_range _ -> assert false
    in
    let join, joined_schema = join_op db meter jp in
    join.est <- Some the_plan.plan_rows;
    let order = Schema.attributes joined_schema in
    let canonical = canonicalize_op joined_schema order meter join in
    let predicates, root = with_filter joined_schema canonical in
    {
      root;
      leaf = join;
      the_plan;
      schema = joined_schema;
      order;
      predicates;
      meter;
    }

type executed = {
  shaped : Nfr.t;  (* after projection / NEST / UNNEST *)
  filtered : Nfr.t;  (* after WHERE, before shaping *)
  root : op;  (* full tree, collector (and shape) included *)
  peak : int;
}

let run_select db (s : Ast.select) =
  (* Build under a Plan span so every operator's span (entered inside
     make_op) records as a child of the planning step. *)
  let pipeline =
    Obs.Span.with_span Obs.Span.Plan "build-pipeline" @@ fun _ ->
    build_pipeline db s
  in
  (* The collector (and shape) ops are created before their timed work
     so their span start times bracket what they actually did. *)
  let collector =
    make_op ~children:[ pipeline.root ]
      (if pipeline.predicates = [] then "collect" else "collect+canonicalize")
  in
  let start = Obs.Span.now () in
  let rec drain acc =
    match pull_op pipeline.root with
    | Some nt ->
      meter_add pipeline.meter 1;
      drain (Nfr.add acc nt)
    | None -> acc
  in
  let drained = drain (Nfr.empty pipeline.schema) in
  let filtered =
    if pipeline.predicates = [] then drained
    else Nest.canonicalize drained pipeline.order
  in
  collector.rows_out <- Nfr.cardinality filtered;
  Obs.Span.add_busy collector.span (Obs.Span.now () -. start);
  let shaping =
    s.Ast.columns <> None || s.Ast.nests <> [] || s.Ast.unnests <> []
  in
  let shape =
    if shaping then Some (make_op ~children:[ collector ] "shape (project/nest/unnest)")
    else None
  in
  let shape_start = Obs.Span.now () in
  let shaped = Compile.shape_select filtered ~order:pipeline.order s in
  let root =
    match shape with
    | None -> collector
    | Some shape ->
      shape.rows_out <- Nfr.cardinality shaped;
      Obs.Span.add_busy shape.span (Obs.Span.now () -. shape_start);
      shape
  in
  finish_ops root;
  db.last_ops <- profile_ops root;
  (* Estimation quality: the plan's row estimate against what the
     access-path operator actually emitted, as a relative-error
     histogram (and the slow-query log's est-vs-actual column). *)
  let actual = pipeline.leaf.rows_out in
  db.last_est <- Some (pipeline.the_plan.plan_rows, actual);
  Obs.Registry.observe (registry ()) "planner.est_error"
    (Float.abs (pipeline.the_plan.plan_rows -. float_of_int actual)
    /. float_of_int (max 1 actual));
  { shaped; filtered; root; peak = pipeline.meter.peak }

let select_for_condition table_name condition =
  {
    Ast.columns = None;
    source = Ast.From_table table_name;
    where = Some condition;
    nests = [];
    unnests = [];
  }

(* DML victim search rides the same operator pipeline as SELECT; the
   pipeline is fully drained before any mutation, so no cursor is live
   while the table changes. *)
let matching_tuples db table_name condition =
  let executed = run_select db (select_for_condition table_name condition) in
  (Relation.tuples (Nfr.flatten executed.filtered), executed.root)

let rec add_op_stats total op =
  Storage.Stats.add total op.stats;
  List.iter (add_op_stats total) op.children

(* ------------------------------------------------------------------ *)
(* EXPLAIN / EXPLAIN ANALYZE                                           *)
(* ------------------------------------------------------------------ *)

type op_metrics = {
  op_label : string;
  op_depth : int;
  op_rows : int;
  op_est : float option;
  op_pages : int;
  op_records : int;
  op_bytes : int;
  op_probes : int;
  op_pool_hits : int;
  op_pool_misses : int;
  op_seconds : float;
}

type analyze_report = {
  operators : op_metrics list;
  peak_live : int;
  analyzed : Eval.result;
}

let rec flatten_ops depth op =
  {
    op_label = op.label;
    op_depth = depth;
    op_rows = op.rows_out;
    op_est = op.est;
    op_pages = op.stats.Storage.Stats.pages_read;
    op_records = op.stats.Storage.Stats.records_read;
    op_bytes = op.stats.Storage.Stats.bytes_read;
    op_probes = op.stats.Storage.Stats.index_probes;
    op_pool_hits = op.stats.Storage.Stats.pool_hits;
    op_pool_misses = op.stats.Storage.Stats.pool_misses;
    op_seconds = Obs.Span.busy op.span;
  }
  :: List.concat_map (flatten_ops (depth + 1)) op.children

let analyze_select db (s : Ast.select) =
  let executed = run_select db s in
  {
    operators = flatten_ops 0 executed.root;
    peak_live = executed.peak;
    analyzed = Eval.Rows executed.shaped;
  }

let stats_of_report report =
  let total = Storage.Stats.create () in
  List.iter
    (fun m ->
      total.Storage.Stats.pages_read <-
        total.Storage.Stats.pages_read + m.op_pages;
      total.Storage.Stats.records_read <-
        total.Storage.Stats.records_read + m.op_records;
      total.Storage.Stats.bytes_read <- total.Storage.Stats.bytes_read + m.op_bytes;
      total.Storage.Stats.index_probes <-
        total.Storage.Stats.index_probes + m.op_probes;
      total.Storage.Stats.pool_hits <- total.Storage.Stats.pool_hits + m.op_pool_hits;
      total.Storage.Stats.pool_misses <-
        total.Storage.Stats.pool_misses + m.op_pool_misses)
    report.operators;
  total

let est_text = function
  | None -> "-"
  | Some est -> Printf.sprintf "%.0f" est

let render_analyze report =
  let buffer = Buffer.create 256 in
  let line fmt =
    Printf.ksprintf (fun msg -> Buffer.add_string buffer (msg ^ "\n")) fmt
  in
  line "physical plan (executed):";
  line "  %-44s %8s %8s %7s %9s %8s %9s %9s" "operator" "rows" "est" "pages"
    "records" "probes" "pool" "ms";
  List.iter
    (fun m ->
      line "  %-44s %8d %8s %7d %9d %8d %9s %9.3f"
        (String.make (2 * m.op_depth) ' ' ^ m.op_label)
        m.op_rows (est_text m.op_est) m.op_pages m.op_records m.op_probes
        (Printf.sprintf "%d/%d" m.op_pool_hits m.op_pool_misses)
        (m.op_seconds *. 1000.))
    report.operators;
  line "  peak live tuples: %d" report.peak_live;
  (match report.analyzed with
  | Eval.Rows nfr ->
    line "  result: %d fact(s) in %d NFR tuple(s)" (Nfr.expansion_size nfr)
      (Nfr.cardinality nfr)
  | Eval.Done _ -> ());
  String.trim (Buffer.contents buffer)

let path_text = function
  | Via_scan -> "heap scan"
  | Via_index (attribute, value) ->
    Printf.sprintf "inverted-index probe %s ∋ %s" (Attribute.name attribute)
      (Value.to_string value)
  | Via_range (attribute, lo, hi) ->
    Printf.sprintf "B+-tree range %s in %s%s, %s%s" (Attribute.name attribute)
      (lo_bracket lo) (bound_text "-∞" lo) (bound_text "+∞" hi) (hi_bracket hi)
  | Via_join jp -> (
    match jp.jp_probe with
    | None -> Printf.sprintf "nested-loop product %s × %s" jp.jp_left jp.jp_right
    | Some attribute ->
      let outer, inner =
        match jp.jp_outer with
        | `Left -> (jp.jp_left, jp.jp_right)
        | `Right -> (jp.jp_right, jp.jp_left)
      in
      Printf.sprintf
        "index nested-loop join %s ⋈ %s (outer %s, probe %s into %s)"
        jp.jp_left jp.jp_right outer
        (Attribute.name attribute)
        inner)

(* Views in a FROM clause: a lone view name takes the view-scan path
   below; views inside a JOIN are rejected (the join operators read
   heap records, which a materialized view does not have). *)
let view_in_source db = function
  | Ast.From_table name -> if is_view db name then Some name else None
  | Ast.From_join (left, right) ->
    if is_view db left || is_view db right then
      error "views cannot appear in JOIN"
    else None

(* System tables in a FROM clause, same shape as views: a lone name is
   scanned through its provider; JOINs are rejected because providers
   materialize afresh per statement and have no heap records. *)
let sys_in_source db = function
  | Ast.From_table name -> if is_system db name then Some name else None
  | Ast.From_join (left, right) ->
    if is_system db left || is_system db right then
      error "system tables cannot appear in JOIN"
    else None

(* A SELECT over a view reads the materialized canonical NFR directly:
   the view {e is} the access path, so there is no planning step and
   no heap I/O — just the WHERE/shape machinery over a persistent
   value. Reads see the latest committed view state (view maintenance
   happens only at commit points). *)
let run_view_select db (s : Ast.select) name =
  let label = "view-scan " ^ name in
  Obs.Span.with_span (Obs.Span.Operator label) label @@ fun span ->
  let nfr = Views.Catalog.snapshot db.views name in
  let order = Views.Catalog.order db.views name in
  let filtered = Compile.apply_where (Nfr.schema nfr) order nfr s.Ast.where in
  Obs.Span.set_rows span (Nfr.cardinality filtered);
  db.last_ops <- [ (label, Nfr.cardinality filtered) ];
  db.last_est <- None;
  (Compile.shape_select filtered ~order s, filtered)

(* A SELECT over a system table asks its provider for the current
   contents — the read-only view-scan path generalized to
   provider-backed relations. *)
let run_sys_select db (s : Ast.select) name =
  let label = "system-scan " ^ name in
  Obs.Span.with_span (Obs.Span.Operator label) label @@ fun span ->
  let provider =
    match Systab.find db.sys name with
    | Some p -> p
    | None -> error "unknown table %s" name
  in
  let order, nfr = provider () in
  let filtered = Compile.apply_where (Nfr.schema nfr) order nfr s.Ast.where in
  Obs.Span.set_rows span (Nfr.cardinality filtered);
  db.last_ops <- [ (label, Nfr.cardinality filtered) ];
  db.last_est <- None;
  (Compile.shape_select filtered ~order s, filtered)

let sys_snapshot db name =
  match Systab.find db.sys name with
  | Some provider -> snd (provider ())
  | None -> error "unknown table %s" name

let explain_sys_text db (s : Ast.select) name =
  let nfr = sys_snapshot db name in
  let buffer = Buffer.create 128 in
  let line fmt =
    Printf.ksprintf (fun msg -> Buffer.add_string buffer (msg ^ "\n")) fmt
  in
  line "physical plan:";
  line "  access: system scan %s (provider-backed NFR, %d NFR tuples)" name
    (Nfr.cardinality nfr);
  (match s.Ast.where with
  | None -> ()
  | Some condition ->
    line "  residual filter: %s" (Format.asprintf "%a" Ast.pp_condition condition));
  (match s.Ast.columns with
  | None -> ()
  | Some names -> line "  project %s" (String.concat "," names));
  String.trim (Buffer.contents buffer)

let explain_view_text db (s : Ast.select) name =
  let nfr = Views.Catalog.snapshot db.views name in
  let buffer = Buffer.create 128 in
  let line fmt =
    Printf.ksprintf (fun msg -> Buffer.add_string buffer (msg ^ "\n")) fmt
  in
  line "physical plan:";
  line "  access: view scan %s (materialized canonical NFR, %d NFR tuples)"
    name (Nfr.cardinality nfr);
  (match s.Ast.where with
  | None -> ()
  | Some condition ->
    line "  residual filter: %s" (Format.asprintf "%a" Ast.pp_condition condition));
  (match s.Ast.columns with
  | None -> ()
  | Some names -> line "  project %s" (String.concat "," names));
  String.trim (Buffer.contents buffer)

let explain_text db (s : Ast.select) =
  match view_in_source db s.Ast.source with
  | Some name -> explain_view_text db s name
  | None ->
  match sys_in_source db s.Ast.source with
  | Some name -> explain_sys_text db s name
  | None ->
  let p = plan db s in
  let buffer = Buffer.create 128 in
  let line fmt =
    Printf.ksprintf (fun msg -> Buffer.add_string buffer (msg ^ "\n")) fmt
  in
  line "physical plan:";
  line "  access: %s" (path_text p.plan_path);
  line "  est rows: %.1f%s" p.plan_rows
    (if p.plan_from_stats then "" else " (no statistics; run ANALYZE)");
  if p.plan_candidates <> [] then begin
    line "  candidates:";
    List.iter
      (fun c ->
        line "    %-52s cost %10.1f  est rows %10.1f%s" (path_text c.cand_path)
          c.cand_cost c.cand_rows
          (if c.cand_path = p.plan_path then "  (chosen)" else ""))
      p.plan_candidates
  end;
  (match s.Ast.where with
  | None -> ()
  | Some condition ->
    line "  residual filter: %s" (Format.asprintf "%a" Ast.pp_condition condition));
  (match s.Ast.columns with
  | None -> ()
  | Some names -> line "  project %s" (String.concat "," names));
  String.trim (Buffer.contents buffer)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let tuple_of_row schema row =
  if List.length row <> Schema.degree schema then
    error "expected %d values, got %d" (Schema.degree schema) (List.length row);
  match Tuple.make schema (List.map Compile.value_of_literal row) with
  | tuple -> tuple
  | exception Schema.Schema_error msg -> error "%s" msg

let type_of_name name =
  match Value.ty_of_name (String.lowercase_ascii name) with
  | Some ty -> ty
  | None -> error "unknown type %s" name

(* ------------------------------------------------------------------ *)
(* Transactions: buffered optimistic snapshot isolation                *)
(* ------------------------------------------------------------------ *)

(* In-txn execution never touches the shared tables: every read and
   write goes through the transaction's per-table overlays (a
   persistent NFR snapshotted at first touch plus the txn's own
   writes), so concurrent sessions keep reading the committed state —
   writers never block readers, and ROLLBACK is a pure discard that
   leaves the table, its WAL, its statistics and the plan cache
   byte-identical to never having run. COMMIT validates first-
   committer-wins against the storage ledger and only then applies the
   buffered ops through the storage transaction API (WAL txn framing,
   so recovery replays the group all-or-nothing). *)

let txn_touch db txn name =
  match String_map.find_opt name txn.touched with
  | Some tt -> tt
  | None ->
    let entry = find_entry db name in
    let tt =
      {
        tx_base_seq = Storage.Table.commit_seq entry.tbl;
        tx_schema = Storage.Table.schema entry.tbl;
        tx_order = Storage.Table.nest_order entry.tbl;
        tx_nfr = Storage.Table.snapshot entry.tbl;
        tx_ops = [];
      }
    in
    txn.touched <- String_map.add name tt txn.touched;
    tt

let txn_write_count txn =
  String_map.fold
    (fun _ tt acc -> acc + List.length tt.tx_ops)
    txn.touched 0

(* Victim search against the overlay rides the logical path — the
   physical operators read heap records, which an uncommitted txn does
   not have. *)
let txn_matching tt condition =
  let predicates, contains = Compile.split_condition tt.tx_schema condition in
  let restricted =
    List.fold_left
      (fun nfr (attribute, value) -> Nalgebra.select_contains attribute value nfr)
      tt.tx_nfr contains
  in
  let flat = Nfr.flatten restricted in
  List.fold_left
    (fun flat predicate ->
      match Algebra.select predicate flat with
      | selected -> selected
      | exception Algebra.Algebra_error msg -> error "%s" msg)
    flat predicates

let txn_do_insert tt tuple =
  if Nfr.member_tuple tt.tx_nfr tuple then false
  else begin
    tt.tx_nfr <- Update.insert ~order:tt.tx_order tt.tx_nfr tuple;
    tt.tx_ops <- Op_insert tuple :: tt.tx_ops;
    true
  end

let txn_do_delete tt tuple =
  let nfr = Update.delete ~order:tt.tx_order tt.tx_nfr tuple in
  tt.tx_nfr <- nfr;
  tt.tx_ops <- Op_delete tuple :: tt.tx_ops

let txn_resolve_source db txn = function
  | Ast.From_table name when is_view db name ->
    (* Views are maintained at commit points only: a transaction reads
       the latest committed view state, not its own snapshot. *)
    (Views.Catalog.snapshot db.views name, Views.Catalog.order db.views name)
  | Ast.From_table name when is_system db name ->
    (* System tables are live monitoring state — never part of any
       snapshot; a transaction reads the provider's current contents. *)
    let provider = Option.get (Systab.find db.sys name) in
    let order, nfr = provider () in
    (nfr, order)
  | Ast.From_table name ->
    let tt = txn_touch db txn name in
    (tt.tx_nfr, tt.tx_order)
  | Ast.From_join (left, right) ->
    if is_view db left || is_view db right then
      error "views cannot appear in JOIN";
    if is_system db left || is_system db right then
      error "system tables cannot appear in JOIN";
    let lt = txn_touch db txn left and rt = txn_touch db txn right in
    let joined =
      match Nalgebra.natural_join lt.tx_nfr rt.tx_nfr with
      | joined -> joined
      | exception Schema.Schema_error msg -> error "%s" msg
    in
    let order = Schema.attributes (Nfr.schema joined) in
    (Nest.canonicalize joined order, order)

let begin_txn session =
  let db = session.sdb in
  (* A replica refuses BEGIN outright: every transaction is a write
     intent, and refusing early beats aborting at COMMIT. *)
  require_primary db;
  let txn = { txn_id = db.next_txid; touched = String_map.empty } in
  db.next_txid <- db.next_txid + 1;
  db.active <- txn :: db.active;
  session.txn <- Some txn;
  Obs.Registry.incr (registry ()) "txn.begin";
  Obs.Registry.add_gauge (registry ()) "txn.active" 1.;
  Eval.Done "transaction open"

(* Close out [txn]: unregister it and prune each touched table's
   ledger below the oldest snapshot any still-open transaction holds
   (or the current commit seq when none does). *)
let end_txn session txn =
  let db = session.sdb in
  session.txn <- None;
  db.active <- List.filter (fun t -> t.txn_id <> txn.txn_id) db.active;
  Obs.Registry.add_gauge (registry ()) "txn.active" (-1.);
  String_map.iter
    (fun name _ ->
      match String_map.find_opt name db.tables with
      | None -> ()
      | Some entry ->
        let floor =
          List.fold_left
            (fun acc t ->
              match String_map.find_opt name t.touched with
              | Some tt -> min acc tt.tx_base_seq
              | None -> acc)
            (Storage.Table.commit_seq entry.tbl)
            db.active
        in
        Storage.Table.prune_ledger entry.tbl ~below:floor)
    txn.touched

let rollback_txn session txn =
  Obs.Registry.incr (registry ()) "txn.abort";
  end_txn session txn

let conflict session txn fmt =
  Printf.ksprintf
    (fun msg ->
      Obs.Registry.incr (registry ()) "txn.conflict";
      rollback_txn session txn;
      raise (Conflict msg))
    fmt

let commit_txn session txn =
  let db = session.sdb in
  Obs.Span.with_span (Obs.Span.Txn "commit") "txn-commit" @@ fun _ ->
  (* String_map.bindings is sorted, so multi-table transactions always
     apply in table-name order — any two commits conflict-checked and
     applied by this single-threaded executor serialize identically. *)
  let writers =
    List.filter
      (fun (_, tt) -> tt.tx_ops <> [])
      (String_map.bindings txn.touched)
  in
  (* First committer wins: if any commit since this txn's snapshot
     wrote a flat tuple this txn also wrote, abort — applying would
     overwrite that committer's effect (lost update). *)
  List.iter
    (fun (name, tt) ->
      match String_map.find_opt name db.tables with
      | None -> conflict session txn "table %s was dropped concurrently" name
      | Some entry ->
        List.iter
          (fun op ->
            let tuple = match op with Op_insert t | Op_delete t -> t in
            if Storage.Table.modified_since entry.tbl ~seq:tt.tx_base_seq tuple
            then
              conflict session txn
                "concurrent commit wrote tuple %s in table %s"
                (Format.asprintf "%a" Tuple.pp tuple)
                name)
          tt.tx_ops)
    writers;
  (* Apply through the storage transaction API so each WAL carries the
     whole group under txn framing. The per-table Txn_commit records
     appended here are provisional when a commit manifest is attached:
     the transaction's real commit point is the manifest record below,
     and recovery discards any per-table group whose manifest record
     never synced — all-or-nothing across tables. Without a manifest
     (standalone/embedded tables), the per-table record remains the
     commit point and cross-table atomicity is bounded to a committed
     prefix in table-name order (docs/STORAGE.md). *)
  let commits = ref [] in
  List.iter
    (fun (name, tt) ->
      let entry = find_entry db name in
      let ops = List.rev tt.tx_ops in
      (* The cross-table crash window: one hit per participating
         table, immediately before its provisional group is logged. *)
      Storage.Failpoint.hit "txn.commit.table";
      Storage.Table.begin_txn entry.tbl ~txid:txn.txn_id;
      (match
         List.iter
           (function
             | Op_insert tuple ->
               ignore (Storage.Table.txn_insert entry.tbl ~txid:txn.txn_id tuple)
             | Op_delete tuple ->
               Storage.Table.txn_delete entry.tbl ~txid:txn.txn_id tuple)
           ops
       with
      | () ->
        let seq = Storage.Table.commit_txn entry.tbl ~txid:txn.txn_id in
        commits := (name, seq) :: !commits
      | exception Update.Not_in_relation ->
        (* FCW should have caught this; belt and braces for a commit
           that raced something the ledger missed. *)
        Storage.Table.abort_txn entry.tbl ~txid:txn.txn_id;
        conflict session txn "tuple vanished from %s during commit" name
      | exception Storage.Storage_error.Error e ->
        (try Storage.Table.abort_txn entry.tbl ~txid:txn.txn_id
         with Storage.Storage_error.Error _ -> ());
        rollback_txn session txn;
        raise (Storage.Storage_error.Error e));
      (* Satellite: only committed writes feed the auto-analyze
         threshold — rolled-back transactions never count. *)
      note_writes db entry (List.length ops))
    writers;
  (* The transaction's commit point: the manifest record naming every
     participating table. Appended after all per-table groups, synced
     after all per-table syncs (here when synchronous, by the server's
     group commit otherwise) — so a crash before this record's sync
     rolls the whole transaction back everywhere. *)
  (match db.manifest with
  | Some manifest when writers <> [] ->
    Storage.Manifest.append manifest ~txid:txn.txn_id ~tables:(List.rev !commits);
    if db.manifest_synchronous then Storage.Manifest.sync manifest
  | _ -> ());
  if List.length writers > 1 then
    Obs.Registry.incr (registry ()) "txn.multi_table_commit";
  (* Ship the committed group downstream in commit order. *)
  (match
     List.filter_map
       (fun (name, tt) ->
         match
           List.rev_map
             (function
               | Op_insert t -> Storage.Wal.Insert t
               | Op_delete t -> Storage.Wal.Delete t)
             tt.tx_ops
         with
         | [] -> None
         | entries -> Some (name, entries))
       writers
   with
  | [] -> ()
  | writes -> emit_repl db ~txid:txn.txn_id (R_writes writes));
  (* The commit point: fold the committed writes into dependent views
     and emit CDC deltas — never earlier, so subscribers and view
     readers cannot observe the uncommitted overlay. *)
  List.iter
    (fun (name, tt) ->
      maintain_views db ~base:name
        (List.rev_map
           (function
             | Op_insert t -> Views.Catalog.Ins t
             | Op_delete t -> Views.Catalog.Del t)
           tt.tx_ops))
    writers;
  Obs.Registry.incr (registry ()) "txn.commit";
  end_txn session txn;
  Eval.Done "transaction committed"

let rec exec_txn session txn stats statement =
  let db = session.sdb in
  match statement with
  | Ast.Begin -> error "a transaction is already open"
  | Ast.Commit -> commit_txn session txn
  | Ast.Rollback ->
    Obs.Span.with_span (Obs.Span.Txn "rollback") "txn-rollback" @@ fun _ ->
    rollback_txn session txn;
    Eval.Done "transaction rolled back"
  | Ast.Create _ -> error "CREATE TABLE is not allowed inside a transaction"
  | Ast.Drop _ -> error "DROP TABLE is not allowed inside a transaction"
  | Ast.Create_view _ -> error "CREATE VIEW is not allowed inside a transaction"
  | Ast.Drop_view _ -> error "DROP VIEW is not allowed inside a transaction"
  | Ast.Insert (name, rows) ->
    require_writable db name;
    let tt = txn_touch db txn name in
    let inserted =
      List.fold_left
        (fun count row ->
          if txn_do_insert tt (tuple_of_row tt.tx_schema row) then count + 1
          else count)
        0 rows
    in
    Eval.Done (Printf.sprintf "%d row(s) inserted" inserted)
  | Ast.Delete_values (name, row) ->
    require_writable db name;
    let tt = txn_touch db txn name in
    let tuple = tuple_of_row tt.tx_schema row in
    (match txn_do_delete tt tuple with
    | () -> Eval.Done "1 row deleted"
    | exception Update.Not_in_relation ->
      error "tuple %s is not in %s" (Format.asprintf "%a" Tuple.pp tuple) name)
  | Ast.Delete_where (name, condition) ->
    require_writable db name;
    let tt = txn_touch db txn name in
    let victims = Relation.tuples (txn_matching tt condition) in
    List.iter (fun tuple -> txn_do_delete tt tuple) victims;
    Eval.Done (Printf.sprintf "%d row(s) deleted" (List.length victims))
  | Ast.Update_set (name, assignments, condition) ->
    require_writable db name;
    let tt = txn_touch db txn name in
    let resolved =
      List.map
        (fun (column, literal) ->
          ( Compile.attribute_of tt.tx_schema column,
            Compile.value_of_literal literal ))
        assignments
    in
    let victims = Relation.tuples (txn_matching tt condition) in
    List.iter
      (fun victim ->
        let image =
          List.fold_left
            (fun tuple (attribute, value) ->
              Tuple.set_field tt.tx_schema tuple attribute value)
            victim resolved
        in
        if not (Tuple.equal image victim) then begin
          ignore (txn_do_insert tt image);
          txn_do_delete tt victim
        end)
      victims;
    Eval.Done (Printf.sprintf "%d row(s) updated" (List.length victims))
  | Ast.Select s ->
    let source, order = txn_resolve_source db txn s.Ast.source in
    let filtered =
      Compile.apply_where (Nfr.schema source) order source s.Ast.where
    in
    Eval.Rows (Compile.shape_select filtered ~order s)
  | Ast.Select_count (source, condition) ->
    let nfr, order = txn_resolve_source db txn source in
    let filtered = Compile.apply_where (Nfr.schema nfr) order nfr condition in
    Eval.Done
      (Printf.sprintf "%d fact(s) in %d NFR tuple(s)"
         (Nfr.expansion_size filtered) (Nfr.cardinality filtered))
  | Ast.Explain s -> Eval.Done (explain_text db s)
  | Ast.Explain_analyze _ ->
    error
      "EXPLAIN ANALYZE is not allowed inside a transaction (physical \
       operators read committed state, not the snapshot)"
  | Ast.History (series, last) -> (
    match Systab.history_result db.sys ~series ~last with
    | Ok rows -> Eval.Rows rows
    | Error msg -> error "%s" msg)
  | Ast.Analyze name ->
    (* Statistics describe the committed table; collecting them inside
       a transaction is allowed and reads right through the snapshot. *)
    if is_view db name then
      error "cannot ANALYZE view %s: statistics are collected on base tables"
        name;
    if is_system db name then
      error "cannot ANALYZE system table %s: statistics are collected on base \
             tables"
        name;
    let entry = find_entry db name in
    let collected = collect_stats entry in
    bump_generation db;
    Obs.Registry.incr (registry ()) "planner.analyze";
    Eval.Done (Tablestats.summary name collected)
  | Ast.Trace inner ->
    let run () = ignore (exec_txn session txn stats inner) in
    let trace =
      match Obs.Span.current_trace () with
      | Some trace ->
        run ();
        trace
      | None ->
        Obs.Span.in_trace (fun trace ->
            run ();
            trace)
    in
    Eval.Rows (Eval.rows_of_spans (Obs.Span.spans_of_trace trace))
  | Ast.Show name ->
    if is_view db name then
      (* Views are maintained at commit points only, so a transaction
         reads the latest committed view state — they are not part of
         its snapshot. *)
      Eval.Rows (Views.Catalog.snapshot db.views name)
    else if is_system db name then Eval.Rows (sys_snapshot db name)
    else
      let tt = txn_touch db txn name in
      Eval.Rows tt.tx_nfr

and exec_session session statement =
  let verb = Ast.statement_verb statement in
  Obs.Span.with_span (Obs.Span.Statement verb) verb @@ fun statement_span ->
  let stats = Storage.Stats.create () in
  let result =
    match session.txn with
    | Some txn -> exec_txn session txn stats statement
    | None -> exec_auto session stats statement
  in
  Obs.Span.set_bytes statement_span stats.Storage.Stats.bytes_read;
  (result, stats)

and exec_auto session stats statement =
  let db = session.sdb in
  match statement with
    | Ast.Create (name, columns, order) ->
      require_primary db;
      let schema =
        match
          Schema.of_names (List.map (fun (n, ty) -> (n, type_of_name ty)) columns)
        with
        | schema -> schema
        | exception Schema.Schema_error msg -> error "%s" msg
      in
      let order_attrs =
        match order with
        | None -> Schema.attributes schema
        | Some names -> List.map (Compile.attribute_of schema) names
      in
      add_table db name (Storage.Table.create ~order:order_attrs schema);
      emit_repl db (R_create { name; schema; order = order_attrs });
      Eval.Done (Printf.sprintf "table %s created" name)
    | Ast.Drop name ->
      require_primary db;
      if is_view db name then error "%s is a view: use DROP VIEW" name;
      if is_system db name then error "%s" (Systab.read_only_error name);
      if not (String_map.mem name db.tables) then error "unknown table %s" name;
      (match Views.Catalog.dependents db.views ~base:name with
      | [] -> ()
      | deps ->
        error "cannot drop table %s: view %s depends on it" name
          (String.concat ", " deps));
      Storage.Table.close (find_table db name);
      db.tables <- String_map.remove name db.tables;
      bump_generation db;
      emit_repl db (R_drop name);
      Eval.Done (Printf.sprintf "table %s dropped" name)
    | Ast.Create_view (view, base, by) -> (
      require_primary db;
      if Systab.is_system_name view then error "%s" (Systab.reserved_error view);
      if String_map.mem view db.tables then error "table %s already exists" view;
      if is_view db base then
        error "%s is a view: views must be defined over base tables" base;
      if is_system db base then
        error "%s is a system table: views must be defined over base tables"
          base;
      let entry = find_entry db base in
      match
        Views.Catalog.define db.views ~view ~base ~by
          (Storage.Table.snapshot entry.tbl)
      with
      | () ->
        bump_generation db;
        emit_repl db (R_create_view { view; base; by });
        Eval.Done (Printf.sprintf "view %s created" view)
      | exception Views.Catalog.View_error msg -> error "%s" msg)
    | Ast.Drop_view view -> (
      require_primary db;
      match Views.Catalog.drop db.views view with
      | () ->
        bump_generation db;
        emit_repl db (R_drop_view view);
        Eval.Done (Printf.sprintf "view %s dropped" view)
      | exception Views.Catalog.View_error msg -> error "%s" msg)
    | Ast.Insert (name, rows) ->
      require_primary db;
      require_writable db name;
      let entry = find_entry db name in
      let schema = Storage.Table.schema entry.tbl in
      let inserted, ops =
        List.fold_left
          (fun (count, ops) row ->
            let tuple = tuple_of_row schema row in
            if Storage.Table.insert entry.tbl tuple then
              (count + 1, Views.Catalog.Ins tuple :: ops)
            else (count, ops))
          (0, []) rows
      in
      note_writes db entry inserted;
      let ops = List.rev ops in
      maintain_views db ~base:name ops;
      if ops <> [] then
        emit_repl db (R_writes [ (name, entries_of_view_ops ops) ]);
      Eval.Done (Printf.sprintf "%d row(s) inserted" inserted)
    | Ast.Delete_values (name, row) ->
      require_primary db;
      require_writable db name;
      let entry = find_entry db name in
      let tuple = tuple_of_row (Storage.Table.schema entry.tbl) row in
      (match Storage.Table.delete entry.tbl tuple with
      | () ->
        note_writes db entry 1;
        maintain_views db ~base:name [ Views.Catalog.Del tuple ];
        emit_repl db (R_writes [ (name, [ Storage.Wal.Delete tuple ]) ]);
        Eval.Done "1 row deleted"
      | exception Update.Not_in_relation ->
        error "tuple %s is not in %s" (Format.asprintf "%a" Tuple.pp tuple) name)
    | Ast.Delete_where (name, condition) ->
      require_primary db;
      require_writable db name;
      let entry = find_entry db name in
      let victims, search = matching_tuples db name condition in
      add_op_stats stats search;
      List.iter (fun tuple -> Storage.Table.delete entry.tbl tuple) victims;
      note_writes db entry (List.length victims);
      maintain_views db ~base:name
        (List.map (fun t -> Views.Catalog.Del t) victims);
      if victims <> [] then
        emit_repl db
          (R_writes
             [ (name, List.map (fun t -> Storage.Wal.Delete t) victims) ]);
      Eval.Done (Printf.sprintf "%d row(s) deleted" (List.length victims))
    | Ast.Update_set (name, assignments, condition) ->
      require_primary db;
      require_writable db name;
      let entry = find_entry db name in
      let schema = Storage.Table.schema entry.tbl in
      let resolved =
        List.map
          (fun (column, literal) ->
            (Compile.attribute_of schema column, Compile.value_of_literal literal))
          assignments
      in
      let victims, search = matching_tuples db name condition in
      add_op_stats stats search;
      let image_of tuple =
        List.fold_left
          (fun tuple (attribute, value) ->
            Tuple.set_field schema tuple attribute value)
          tuple resolved
      in
      (* Insert each victim's image before deleting the victim, one
         pair at a time: a crash anywhere in the window leaves every
         victim present as itself or as its image — never silently
         lost, as the old delete-all-then-insert-all batches did.
         Assignments are constant, so an image colliding with another
         victim equals that victim's own (identity) image; identity
         pairs are skipped outright, which keeps the pairwise order
         equivalent to the batch semantics. *)
      let ops =
        List.fold_left
          (fun ops victim ->
            let image = image_of victim in
            if not (Tuple.equal image victim) then begin
              ignore (Storage.Table.insert entry.tbl image);
              Storage.Table.delete entry.tbl victim;
              Views.Catalog.Del victim :: Views.Catalog.Ins image :: ops
            end
            else ops)
          [] victims
      in
      note_writes db entry (List.length victims);
      let ops = List.rev ops in
      maintain_views db ~base:name ops;
      if ops <> [] then
        emit_repl db (R_writes [ (name, entries_of_view_ops ops) ]);
      Eval.Done (Printf.sprintf "%d row(s) updated" (List.length victims))
    | Ast.Select s -> (
      match view_in_source db s.Ast.source with
      | Some name ->
        let shaped, _ = run_view_select db s name in
        Eval.Rows shaped
      | None -> (
        match sys_in_source db s.Ast.source with
        | Some name ->
          let shaped, _ = run_sys_select db s name in
          Eval.Rows shaped
        | None ->
          let executed = run_select db s in
          add_op_stats stats executed.root;
          Eval.Rows executed.shaped))
    | Ast.Select_count (source, condition) -> (
      let select =
        { Ast.columns = None; source; where = condition; nests = []; unnests = [] }
      in
      match view_in_source db source with
      | Some name ->
        let _, filtered = run_view_select db select name in
        Eval.Done
          (Printf.sprintf "%d fact(s) in %d NFR tuple(s)"
             (Nfr.expansion_size filtered) (Nfr.cardinality filtered))
      | None -> (
        match sys_in_source db source with
        | Some name ->
          let _, filtered = run_sys_select db select name in
          Eval.Done
            (Printf.sprintf "%d fact(s) in %d NFR tuple(s)"
               (Nfr.expansion_size filtered) (Nfr.cardinality filtered))
        | None ->
          let executed = run_select db select in
          add_op_stats stats executed.root;
          Eval.Done
            (Printf.sprintf "%d fact(s) in %d NFR tuple(s)"
               (Nfr.expansion_size executed.filtered)
               (Nfr.cardinality executed.filtered))))
    | Ast.Explain s -> Eval.Done (explain_text db s)
    | Ast.Explain_analyze s -> (
      match view_in_source db s.Ast.source with
      | Some name ->
        let shaped, filtered = run_view_select db s name in
        Eval.Done
          (Printf.sprintf
             "physical plan (executed):\n\
             \  access: view scan %s -> %d NFR tuple(s), %d returned"
             name (Nfr.cardinality filtered) (Nfr.cardinality shaped))
      | None -> (
        match sys_in_source db s.Ast.source with
        | Some name ->
          let shaped, filtered = run_sys_select db s name in
          Eval.Done
            (Printf.sprintf
               "physical plan (executed):\n\
               \  access: system scan %s -> %d NFR tuple(s), %d returned"
               name (Nfr.cardinality filtered) (Nfr.cardinality shaped))
        | None ->
          let report = analyze_select db s in
          Storage.Stats.add stats (stats_of_report report);
          Eval.Done (render_analyze report)))
    | Ast.History (series, last) -> (
      match Systab.history_result db.sys ~series ~last with
      | Ok rows -> Eval.Rows rows
      | Error msg -> error "%s" msg)
    | Ast.Analyze name ->
      if is_view db name then
        error "cannot ANALYZE view %s: statistics are collected on base tables"
          name;
      if is_system db name then
        error
          "cannot ANALYZE system table %s: statistics are collected on base \
           tables"
          name;
      let entry = find_entry db name in
      let collected = collect_stats entry in
      bump_generation db;
      Obs.Registry.incr (registry ()) "planner.analyze";
      Eval.Done (Tablestats.summary name collected)
    | Ast.Trace inner ->
      (* Run the statement under a trace scope — reusing the server's
         ambient one when present — and return its spans as rows. *)
      let run () =
        let _, inner_stats = exec_session session inner in
        Storage.Stats.add stats inner_stats
      in
      let trace =
        match Obs.Span.current_trace () with
        | Some trace ->
          run ();
          trace
        | None ->
          Obs.Span.in_trace (fun trace ->
              run ();
              trace)
      in
      Eval.Rows (Eval.rows_of_spans (Obs.Span.spans_of_trace trace))
    | Ast.Show name ->
      if is_view db name then Eval.Rows (Views.Catalog.snapshot db.views name)
      else if is_system db name then Eval.Rows (sys_snapshot db name)
      else Eval.Rows (Storage.Table.snapshot (find_table db name))
    | Ast.Begin ->
      Obs.Span.with_span (Obs.Span.Txn "begin") "txn-begin" @@ fun _ ->
      begin_txn session
    | Ast.Commit | Ast.Rollback -> error "no transaction is open"

let exec db statement = exec_session (default_session db) statement

(* Discard the session's open transaction, if any — the server calls
   this when a connection dies mid-transaction. [true] when a
   transaction was actually rolled back. *)
let rollback_if_open session =
  match session.txn with
  | None -> false
  | Some txn ->
    rollback_txn session txn;
    true

let session_write_count session =
  match session.txn with
  | None -> 0
  | Some txn -> txn_write_count txn

let explain = explain_text

let exec_string db input =
  List.map (exec db) (Parser.parse_script input)

(* ------------------------------------------------------------------ *)
(* Replication apply (replica side)                                    *)
(* ------------------------------------------------------------------ *)

(* The replica's apply path. Shipped events bypass the read-only guard
   — replication is the one writer a replica has — and run through the
   same storage and view-maintenance machinery as the primary, so a
   drained replica's canonical state is byte-identical. Transaction
   groups replay through the storage transaction API and record a
   local manifest entry, so the replica's own crash recovery enforces
   the same all-or-nothing rule. *)
let apply_repl_event db event =
  let ops_of_entries entries =
    List.filter_map
      (function
        | Storage.Wal.Insert t -> Some (Views.Catalog.Ins t)
        | Storage.Wal.Delete t -> Some (Views.Catalog.Del t)
        | _ -> None)
      entries
  in
  (match event.r_change with
  | R_writes writes ->
    (match event.r_txid with
    | Some txid ->
      (* Keep local txid allocation above every applied txid so a
         post-promotion transaction can never collide with a stale
         manifest record. *)
      db.next_txid <- max db.next_txid (txid + 1);
      let commits =
        List.map
          (fun (name, entries) ->
            let entry = find_entry db name in
            Storage.Table.begin_txn entry.tbl ~txid;
            List.iter
              (function
                | Storage.Wal.Insert t ->
                  ignore (Storage.Table.txn_insert entry.tbl ~txid t)
                | Storage.Wal.Delete t -> (
                  try Storage.Table.txn_delete entry.tbl ~txid t
                  with Update.Not_in_relation -> ())
                | _ -> ())
              entries;
            (name, Storage.Table.commit_txn entry.tbl ~txid))
          writes
      in
      (match db.manifest with
      | Some manifest when commits <> [] ->
        Storage.Manifest.append manifest ~txid ~tables:commits;
        if db.manifest_synchronous then Storage.Manifest.sync manifest
      | _ -> ())
    | None ->
      List.iter
        (fun (name, entries) ->
          let entry = find_entry db name in
          List.iter
            (function
              | Storage.Wal.Insert t ->
                ignore (Storage.Table.insert entry.tbl t)
              | Storage.Wal.Delete t -> (
                try Storage.Table.delete entry.tbl t
                with Update.Not_in_relation -> ())
              | _ -> ())
            entries)
        writes);
    List.iter
      (fun (name, entries) ->
        let entry = find_entry db name in
        note_writes db entry (List.length entries);
        maintain_views db ~base:name (ops_of_entries entries))
      writes
  | R_create { name; schema; order } ->
    (* A (re)bootstrap replaces local state with the primary's. *)
    (match String_map.find_opt name db.tables with
    | Some entry ->
      Storage.Table.close entry.tbl;
      db.tables <- String_map.remove name db.tables
    | None -> ());
    add_table db name (Storage.Table.create ~order schema)
  | R_drop name -> (
    match String_map.find_opt name db.tables with
    | Some entry ->
      Storage.Table.close entry.tbl;
      db.tables <- String_map.remove name db.tables;
      bump_generation db
    | None -> ())
  | R_create_view { view; base; by } ->
    if Views.Catalog.mem db.views view then Views.Catalog.drop db.views view;
    Views.Catalog.define db.views ~view ~base ~by
      (Storage.Table.snapshot (find_table db base));
    bump_generation db
  | R_drop_view view ->
    if Views.Catalog.mem db.views view then begin
      Views.Catalog.drop db.views view;
      bump_generation db
    end);
  db.repl_seq <- max db.repl_seq event.r_seq

(* Synthesized full-state events for a fresh subscriber: the primary
   retains no historical log, so a subscription starts from a snapshot
   — CREATE plus a full insert load per table (name order), then the
   view definitions — all stamped at the current stream position; the
   live tail continues from the next sequence number. System tables
   are provider-backed and re-derive locally, so they never ship. *)
let repl_bootstrap db =
  let time = now_s () in
  let stamp change =
    { r_seq = db.repl_seq; r_txid = None; r_time = time; r_change = change }
  in
  let table_events =
    List.concat_map
      (fun (name, entry) ->
        let tbl = entry.tbl in
        let create =
          stamp
            (R_create
               {
                 name;
                 schema = Storage.Table.schema tbl;
                 order = Storage.Table.nest_order tbl;
               })
        in
        let inserts =
          Nfr.fold
            (fun nt acc ->
              List.rev_append
                (List.rev_map
                   (fun t -> Storage.Wal.Insert t)
                   (Ntuple.expand nt))
                acc)
            (Storage.Table.snapshot tbl) []
        in
        (* Chunked so no single bootstrap frame outgrows the wire's
           payload cap on a large table. *)
        let rec chunks acc = function
          | [] -> List.rev acc
          | entries ->
            let rec take n taken rest =
              match rest with
              | [] -> (List.rev taken, [])
              | _ when n = 0 -> (List.rev taken, rest)
              | e :: rest -> take (n - 1) (e :: taken) rest
            in
            let chunk, rest = take 1024 [] entries in
            chunks (stamp (R_writes [ (name, chunk) ]) :: acc) rest
        in
        create :: chunks [] inserts)
      (String_map.bindings db.tables)
  in
  let view_events =
    List.map
      (fun (def : Views.Catalog.def) ->
        stamp
          (R_create_view { view = def.view; base = def.base; by = def.by }))
      (Views.Catalog.defs db.views)
  in
  table_events @ view_events
