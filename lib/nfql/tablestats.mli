(** Per-table statistics for the cost-based planner.

    Collected by the [ANALYZE <table>] statement (and auto-refreshed
    by {!Physical} after a write-count threshold), one {!attr_stats}
    per schema attribute: the paper's Def. 6 cardinality class, Def. 7
    single-attribute fixedness, distinct-value count, and the
    posting-size distribution (mean/max tuples per value). These are
    the selectivity priors the cost model prices access paths with:
    a fixed ([1:1]/[n:1]) attribute probes to at most one group; a
    [1:n]/[m:n] attribute's probe fans out to a posting-distribution
    estimate. *)

open Relational
open Nfr_core

type attr_stats = {
  a_attr : Attribute.t;
  a_class : Classify.cardinality;  (** Def. 6 class *)
  a_distinct : int;  (** distinct component values *)
  a_mean_posting : float;  (** mean tuples containing one value *)
  a_max_posting : int;  (** max tuples containing one value *)
  a_fixed : bool;  (** Def. 7 fixedness on this single attribute *)
}

type t = {
  s_rows : int;  (** NFR tuples (groups) *)
  s_facts : int;  (** flat facts ([R*] cardinality) *)
  s_attrs : attr_stats list;  (** schema order *)
}

val collect : Nfr.t -> t
(** One pass per attribute over the canonical snapshot. *)

val find : t -> Attribute.t -> attr_stats option

val summary : string -> t -> string
(** The [Done] text ANALYZE returns — identical on both back ends for
    identical content, so differential tests compare it verbatim. *)
