open Relational
open Nfr_core

type provider = unit -> Attribute.t list * Nfr.t
type registry = (string, provider) Hashtbl.t

let create () : registry = Hashtbl.create 4

let is_system_name name = String.length name > 0 && name.[0] = '_'

let register registry name provider =
  if not (is_system_name name) then
    invalid_arg
      (Printf.sprintf "Systab.register: %S does not start with '_'" name);
  Hashtbl.replace registry name provider

let find registry name = Hashtbl.find_opt registry name

let names registry =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry [] |> List.sort compare

let read_only_error name =
  Printf.sprintf "system table %s is read-only" name

let reserved_error name =
  Printf.sprintf "name %s is reserved for system tables (leading '_')" name

let history_result registry ~series ~last =
  match find registry "_metrics" with
  | None -> Error "no metrics history: the _metrics system table is not installed"
  | Some provider ->
    let _, nfr = provider () in
    let schema = Nfr.schema nfr in
    let a_series = Attribute.make "Series" and a_ts = Attribute.make "Ts" in
    if Schema.position_opt schema a_series = None
       || Schema.position_opt schema a_ts = None
    then Error "the _metrics provider lacks Series/Ts columns"
    else begin
      let want = Value.of_string series in
      let rows =
        Relation.tuples (Nfr.flatten nfr)
        |> List.filter (fun t -> Value.equal (Tuple.field schema t a_series) want)
        |> List.sort (fun a b ->
               Value.compare (Tuple.field schema a a_ts) (Tuple.field schema b a_ts))
      in
      let rows =
        match last with
        | None -> rows
        | Some n ->
          let drop = List.length rows - n in
          if drop <= 0 then rows else List.filteri (fun i _ -> i >= drop) rows
      in
      Ok (Nfr.of_ntuples schema (List.map Ntuple.of_tuple rows))
    end
