(** NFQL over the storage engine.

    The second back end: tables are {!Storage.Table} values (heap +
    inverted index + optional B+-tree + WAL), and every SELECT runs as
    a {e pull-based operator tree} — scan / index-probe / B+-range
    leaves, streaming filter, index nested-loop join and blocking
    nest-canonicalize — instead of materializing its input:

    - {b index}: a [CONTAINS] constraint or an [attr = const] conjunct
      probes the inverted index and decodes only matching groups;
    - {b range}: comparison conjuncts on the table's ordered attribute
      become one B+-tree range scan, open-ended when only one bound
      exists ([WHERE x > 5]) and strict at a bound produced by [<]/[>]
      (the boundary group is never fetched);
    - {b scan}: everything else streams the heap one record per pull,
      so a filtered scan holds O(matches) decoded tuples, not
      O(table).

    {2 Planning}

    Which path runs is decided by a cost model fed by {!Tablestats}
    (collected by [ANALYZE <table>], refreshed automatically after
    enough writes). With statistics, every candidate — each posting
    probe, the B+-range on the ordered attribute (an equality conjunct
    on it competes as the point range [[v, v]]), the heap scan, and
    for a join both orientations over every shared attribute — is
    priced and the cheapest wins; row estimates use the paper's Def. 6
    cardinality class as a selectivity prior (a fixed attribute's
    value selects at most one group; otherwise the posting
    distribution). Without statistics the legacy first-fit ranking
    applies (cheapest posting probe, else range, else scan).

    Plans are cached in a fixed-capacity LRU keyed on the select's
    structure plus the statistics {!generation}; ANALYZE, DDL and
    auto-refresh bump the generation so stale plans miss. The cache
    charges [planner.cache_hit] / [planner.cache_miss] counters and
    each executed select observes its relative estimation error in the
    [planner.est_error] histogram on {!Obs.Registry.global}.

    Whatever the path, tuples are filtered with the same semantics as
    {!Eval} — access paths are sound pre-filters (they never lose a
    matching group), so both back ends return identical rows
    (property-tested). DML statements behave as in {!Eval} but persist
    through the table (and its WAL, if any); UPDATE applies each
    victim as an insert-image-then-delete pair so a crash inside the
    statement never silently loses a row.

    Each operator carries its own {!Storage.Stats} counters plus
    rows-emitted, and its wall-clock lives on an {!Obs.Span} — the one
    clock both [EXPLAIN ANALYZE SELECT ...] (which runs the query and
    renders per-operator metrics; {!analyze_select} is the
    programmatic face of the same report) and [TRACE <statement>]
    (which returns the whole span tree as rows) read. Statements run
    under a [Statement] span; planning under a [Plan] span whose
    children are the operators it built.

    {2 Transactions}

    [BEGIN]/[COMMIT]/[ROLLBACK] give buffered optimistic snapshot
    isolation per {!session}. Inside a transaction every touched table
    is an overlay — the committed NFR snapshotted at first touch (O(1):
    NFRs are persistent) plus the transaction's own writes — so reads
    are repeatable, other sessions keep seeing committed state
    (writers never block readers), and ROLLBACK is a pure discard:
    table, WAL, statistics, generation and plan cache are all
    byte-identical to the transaction never having run. COMMIT
    validates first-committer-wins (any commit since the snapshot that
    wrote a flat tuple this transaction also wrote raises {!Conflict}
    and rolls back) and then applies the buffered ops through
    {!Storage.Table}'s transaction API, so the WAL carries the group
    under txn framing and crash recovery replays it all-or-nothing.
    DDL and [EXPLAIN ANALYZE] are rejected inside a transaction; only
    committed writes feed the auto-analyze threshold.

    {e Cross-table} crash atomicity depends on the commit manifest.
    Standalone (no manifest attached), each per-table [Txn_commit] is
    that table's commit point, so a crash between two tables' appends
    recovers a committed prefix in table-name order. With
    {!attach_manifest}, per-table commits are provisional: the
    transaction's single commit point is its {!Storage.Manifest}
    record, appended after every table's group and synced after every
    table's WAL, and recovery discards per-table groups whose manifest
    record never made it — all-or-nothing across tables
    (docs/STORAGE.md).

    {2 Replication}

    A {!set_repl_sink} subscriber receives every committed change —
    DML as WAL-entry groups in commit order, DDL as structural events
    — which is the WAL-shipping stream the server forwards to read
    replicas. A replica applies the stream with {!apply_repl_event}
    (bypassing its read-only guard) and refuses local writes while
    {!read_only} is set; {!repl_bootstrap} synthesizes the full-state
    prefix a fresh subscriber needs, since no historical log is
    retained. *)

open Relational

type db

type session
(** One client's execution context: the shared {!db} plus that
    client's open transaction, if any. *)

exception Conflict of string
(** Raised by [COMMIT] when first-committer-wins validation fails; the
    transaction has already been rolled back. *)

exception Read_only of string
(** Raised by every write statement (DML, DDL, [BEGIN]) on a database
    with {!set_read_only} in force — a read replica. The payload names
    the primary to write to instead. *)

(** One committed change on the primary, as shipped to replicas. DML
    travels as the per-table WAL entries of one commit group (commit
    order preserved); DDL travels structurally, so a replica re-runs
    the same catalog operation rather than re-parsing text. *)
type repl_change =
  | R_writes of (string * Storage.Wal.entry list) list
      (** one commit group: per participating table, its
          [Insert]/[Delete] entries in execution order *)
  | R_create of {
      name : string;
      schema : Schema.t;
      order : Attribute.t list;
    }
  | R_drop of string
  | R_create_view of { view : string; base : string; by : string list }
  | R_drop_view of string

(** One event on the replication stream. [r_seq] increments per event
    on the primary; [r_txid] is set for transactional groups (and
    recorded in the replica's local manifest); [r_time] is the
    primary's emission clock, the replica's lag reference. *)
type repl_event = {
  r_seq : int;
  r_txid : int option;
  r_time : float;
  r_change : repl_change;
}

(** One end of a range, with inclusivity: [{b_value = v; b_incl =
    false}] excludes the boundary group itself. *)
type bound = { b_value : Value.t; b_incl : bool }

(** A planned join: which sides, which shared attribute the inner
    index is probed on ([None] — no shared attribute — is a Cartesian
    product), and which side is scanned as the outer. *)
type join_path = {
  jp_left : string;
  jp_right : string;
  jp_probe : Attribute.t option;
  jp_outer : [ `Left | `Right ];
}

(** Which access path a SELECT uses (surfaced by {!explain}). Range
    bounds are optional: [None] means that side is open. *)
type access_path =
  | Via_scan
  | Via_index of Attribute.t * Value.t
  | Via_range of Attribute.t * bound option * bound option
  | Via_join of join_path

(** One priced alternative the planner considered. *)
type candidate = {
  cand_path : access_path;
  cand_cost : float;  (** abstract cost units (1.0 = one page fetch) *)
  cand_rows : float;  (** estimated NFR tuples out of the access path *)
}

(** The planner's decision for one select. [plan_candidates] is the
    full priced table when statistics informed the choice, empty on
    the legacy (never-ANALYZEd) path. *)
type plan = {
  plan_path : access_path;
  plan_rows : float;
  plan_candidates : candidate list;
  plan_from_stats : bool;
}

val create : unit -> db

val add_table : db -> string -> Storage.Table.t -> unit
(** Register an existing table. @raise Compile.Error on duplicates. *)

val table : db -> string -> Storage.Table.t option

val table_stats : db -> string -> Tablestats.t option
(** Planner statistics for the table, if it has been ANALYZEd. *)

val catalog : db -> Views.Catalog.t
(** The database's view catalog: incrementally maintained canonical
    NFRs over base tables. Views absorb {e committed} DML only —
    autocommit statements immediately, transactional writes at COMMIT
    (after validation and the storage apply), never from an
    uncommitted overlay. *)

val is_view : db -> string -> bool

val register_system_table : db -> string -> Systab.provider -> unit
(** Install (or replace) a read-only system-table provider; see
    {!Systab}. @raise Invalid_argument unless the name starts with
    ['_']. *)

val system_table_names : db -> string list

val set_cdc_sink : db -> (Views.Catalog.event -> unit) -> unit
(** Install the change-data-capture sink: called once per view per
    commit point with that commit's delta (in commit order, on the
    executing thread). The server queues these and fans them out to
    subscribers after the covering group-commit fsync. *)

val attach_manifest : ?synchronous:bool -> db -> Storage.Manifest.t -> unit
(** Install the global commit manifest — from here on it is the single
    commit point for multi-table transactions (see the header). With
    [~synchronous:false] the manifest record is appended at COMMIT but
    fsynced by {!sync_wal} (the server's group commit); the default
    syncs at COMMIT. Txid allocation restarts above the manifest's
    largest recorded txid. *)

val manifest : db -> Storage.Manifest.t option

val set_repl_sink : db -> (repl_event -> unit) -> unit
(** Install the replication sink: called once per committed change in
    commit order, on the executing thread. The server queues events
    and ships them to subscribed replicas only after the covering
    group-commit fsync — nothing leaves the primary before it is
    durable there. *)

val repl_seq : db -> int
(** On a primary, the last emitted stream sequence; on a replica, the
    last applied one. *)

val set_read_only : db -> string option -> unit
(** [set_read_only db (Some primary)] puts the database in replica
    mode: every write statement raises {!Read_only} naming [primary].
    [set_read_only db None] — promotion — makes it writable again. *)

val read_only : db -> string option

val apply_repl_event : db -> repl_event -> unit
(** Apply one shipped event on a replica, bypassing the read-only
    guard. Runs through the same storage/view machinery as the
    primary's own commit path: transactional groups replay under txn
    framing and record a local manifest entry (when one is attached),
    so the replica's crash recovery enforces the same all-or-nothing
    rule; views are maintained incrementally from the same deltas.
    Advances {!repl_seq} to the event's sequence. *)

val repl_bootstrap : db -> repl_event list
(** The full-state prefix for a fresh subscriber: per table (name
    order) an [R_create] and one [R_writes] loading its flat facts,
    then each view definition — all stamped at the current stream
    position. System tables are provider-backed and never ship. *)

val attach_views_wal : db -> path:string -> unit
(** Re-open the view catalog backed by a write-ahead log at [path]:
    existing definitions in the log are replayed (salvage rules — a
    torn tail is trimmed, never fatal) and rematerialized against the
    currently registered tables; definitions whose base is missing are
    dropped and counted on [view.orphaned_total]. Call after table
    loading, before serving. *)

val iter_tables : db -> (string -> Storage.Table.t -> unit) -> unit
(** Apply [f name table] to every registered table. *)

val wal_unsynced : db -> int
(** Bytes written to any table's WAL — or the commit manifest — but
    not yet fsynced: the group commit window across the whole
    database. *)

val sync_wal : db -> unit
(** Fsync every table's WAL ({!Storage.Table.sync_wal}), then the
    commit manifest; the group commit point the server calls once per
    loop tick. Table WALs first, manifest last: a power cut inside the
    sequence can only lose manifest records, and a transaction without
    its manifest record rolls back in every table on recovery. *)

val generation : db -> int
(** Statistics generation — bumped by ANALYZE, DDL and auto-refresh;
    part of every plan-cache key. *)

val set_auto_analyze_threshold : db -> int -> unit
(** Writes (inserted/deleted/updated tuples) after which an analyzed
    table's statistics are re-collected automatically. Default 128;
    clamped to at least 1. *)

val session : db -> session
(** A fresh session (no open transaction). The server creates one per
    connection. *)

val default_session : db -> session
(** The database's shared session — what {!exec} runs under. Created
    lazily, stable thereafter. *)

val in_txn : session -> bool
val session_db : session -> db

val active_txns : db -> int
(** Open transactions across all sessions (the [txn.active] gauge's
    source of truth). *)

val exec : db -> Ast.statement -> Eval.result * Storage.Stats.t
(** Run one statement, returning the result and the access-path
    charges it incurred (summed over all operators). CREATE builds an
    in-memory table without a WAL. Runs under {!default_session}, so
    scripts with [BEGIN]/[COMMIT]/[ROLLBACK] work single-session.
    @raise Eval.Eval_error as {!Eval} does.
    @raise Conflict as {!exec_session} does. *)

val exec_session : session -> Ast.statement -> Eval.result * Storage.Stats.t
(** {!exec} under an explicit session — concurrent sessions get
    independent transactions over the same tables.
    @raise Conflict on a failed [COMMIT] (already rolled back). *)

val rollback_if_open : session -> bool
(** Discard the session's open transaction, if any (the server's
    cleanup when a connection dies mid-transaction). [true] when a
    transaction was rolled back. *)

val session_write_count : session -> int
(** Buffered (uncommitted) write ops in the session's open
    transaction; 0 outside one. *)

val exec_string : db -> string -> (Eval.result * Storage.Stats.t) list

val plan : db -> Ast.select -> plan
(** The plan {!exec} would run for this SELECT, through the LRU plan
    cache (charging [planner.cache_hit] / [planner.cache_miss]). *)

val plan_uncached : db -> Ast.select -> plan
(** {!plan} bypassing the cache — the bench's baseline. *)

val chosen_path : db -> Ast.select -> access_path
(** [(plan db s).plan_path]. *)

val explain : db -> Ast.select -> string
(** Plan text: the chosen access path, its row estimate, the priced
    candidate table when statistics exist, and the residual filter
    (does not run the query; use [EXPLAIN ANALYZE] /
    {!analyze_select} for that). *)

val last_profile : db -> (string * int) list
(** Pre-order [(label, rows_out)] of the most recently executed
    operator tree — what the server's slow-query log snapshots. Empty
    until a SELECT/COUNT/DML-search has run. *)

val last_estimate : db -> (float * int) option
(** [(estimated, actual)] access-path rows of the most recently
    executed select — the slow-query log's est-vs-actual column.
    [None] until a select has run. *)

(** {2 Per-operator execution metrics}

    What [EXPLAIN ANALYZE] reports. One {!op_metrics} per operator of
    the executed tree, pre-order (parents before their inputs,
    [op_depth] giving the indentation). [op_pages] / [op_records] /
    [op_bytes] / [op_probes] charge only that operator's own storage
    touches; [op_seconds] is inclusive of its inputs. *)

type op_metrics = {
  op_label : string;
  op_depth : int;
  op_rows : int;  (** tuples this operator emitted *)
  op_est : float option;
      (** the planner's row estimate — access-path leaves only *)
  op_pages : int;
  op_records : int;
  op_bytes : int;
  op_probes : int;
  op_pool_hits : int;
      (** of [op_pages], how many were buffer-pool hits — the [pool]
          column ([hits/misses]) of the rendered table *)
  op_pool_misses : int;
  op_seconds : float;
}

type analyze_report = {
  operators : op_metrics list;
  peak_live : int;
      (** high-water mark of decoded tuples buffered simultaneously
          (filter/join queues, blocking canonicalize, result
          collection) — the streaming executor's memory story *)
  analyzed : Eval.result;  (** the select's actual rows *)
}

val analyze_select : db -> Ast.select -> analyze_report
(** Execute the select, returning per-operator metrics alongside its
    rows. @raise Eval.Eval_error as {!exec} does. *)

val render_analyze : analyze_report -> string
(** The aligned text table [EXPLAIN ANALYZE] prints. *)
