(** NFQL over the storage engine.

    The second back end: tables are {!Storage.Table} values (heap +
    inverted index + optional B+-tree + WAL), and every SELECT runs as
    a {e pull-based operator tree} — scan / index-probe / B+-range
    leaves, streaming filter, index nested-loop join and blocking
    nest-canonicalize — instead of materializing its input:

    - {b index}: a [CONTAINS] constraint or an [attr = const] conjunct
      probes the inverted index and decodes only matching groups;
    - {b range}: comparison conjuncts on the table's ordered attribute
      become one B+-tree range scan, open-ended when only one bound
      exists ([WHERE x > 5]);
    - {b scan}: everything else streams the heap one record per pull,
      so a filtered scan holds O(matches) decoded tuples, not
      O(table).

    Whatever the path, tuples are filtered with the same semantics as
    {!Eval} — access paths are sound pre-filters (they never lose a
    matching group), so both back ends return identical rows
    (property-tested). DML statements behave as in {!Eval} but persist
    through the table (and its WAL, if any); UPDATE applies each
    victim as an insert-image-then-delete pair so a crash inside the
    statement never silently loses a row.

    Each operator carries its own {!Storage.Stats} counters plus
    rows-emitted, and its wall-clock lives on an {!Obs.Span} — the one
    clock both [EXPLAIN ANALYZE SELECT ...] (which runs the query and
    renders per-operator metrics; {!analyze_select} is the
    programmatic face of the same report) and [TRACE <statement>]
    (which returns the whole span tree as rows) read. Statements run
    under a [Statement] span; planning under a [Plan] span whose
    children are the operators it built. *)

open Relational

type db

(** Which access path a SELECT used (surfaced by {!explain}). Range
    bounds are optional: [None] means that side is open. *)
type access_path =
  | Via_scan
  | Via_index of Attribute.t * Value.t
  | Via_range of Attribute.t * Value.t option * Value.t option

val create : unit -> db

val add_table : db -> string -> Storage.Table.t -> unit
(** Register an existing table. @raise Compile.Error on duplicates. *)

val table : db -> string -> Storage.Table.t option

val exec : db -> Ast.statement -> Eval.result * Storage.Stats.t
(** Run one statement, returning the result and the access-path
    charges it incurred (summed over all operators). CREATE builds an
    in-memory table without a WAL.
    @raise Eval.Eval_error as {!Eval} does. *)

val exec_string : db -> string -> (Eval.result * Storage.Stats.t) list

val chosen_path : db -> Ast.select -> access_path
(** The access path {!exec} would choose for this SELECT. *)

val explain : db -> Ast.select -> string
(** Plan text including the chosen access path (does not run the
    query; use [EXPLAIN ANALYZE] / {!analyze_select} for that). *)

val last_profile : db -> (string * int) list
(** Pre-order [(label, rows_out)] of the most recently executed
    operator tree — what the server's slow-query log snapshots. Empty
    until a SELECT/COUNT/DML-search has run. *)

(** {2 Per-operator execution metrics}

    What [EXPLAIN ANALYZE] reports. One {!op_metrics} per operator of
    the executed tree, pre-order (parents before their inputs,
    [op_depth] giving the indentation). [op_pages] / [op_records] /
    [op_bytes] / [op_probes] charge only that operator's own storage
    touches; [op_seconds] is inclusive of its inputs. *)

type op_metrics = {
  op_label : string;
  op_depth : int;
  op_rows : int;  (** tuples this operator emitted *)
  op_pages : int;
  op_records : int;
  op_bytes : int;
  op_probes : int;
  op_seconds : float;
}

type analyze_report = {
  operators : op_metrics list;
  peak_live : int;
      (** high-water mark of decoded tuples buffered simultaneously
          (filter/join queues, blocking canonicalize, result
          collection) — the streaming executor's memory story *)
  analyzed : Eval.result;  (** the select's actual rows *)
}

val analyze_select : db -> Ast.select -> analyze_report
(** Execute the select, returning per-operator metrics alongside its
    rows. @raise Eval.Eval_error as {!exec} does. *)

val render_analyze : analyze_report -> string
(** The aligned text table [EXPLAIN ANALYZE] prints. *)
