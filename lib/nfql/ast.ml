type literal =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool

type comparison =
  | C_eq
  | C_neq
  | C_lt
  | C_le
  | C_gt
  | C_ge

type operand =
  | O_column of string
  | O_literal of literal

type condition =
  | Compare of comparison * operand * operand
  | Contains of string * literal
  | And of condition * condition
  | Or of condition * condition
  | Not of condition

type source =
  | From_table of string
  | From_join of string * string

type select = {
  columns : string list option;
  source : source;
  where : condition option;
  nests : string list;
  unnests : string list;
}

type statement =
  | Create of string * (string * string) list * string list option
  | Drop of string
  | Create_view of string * string * string list
      (* CREATE VIEW v AS NEST base BY a, b *)
  | Drop_view of string
  | Insert of string * literal list list
  | Delete_values of string * literal list
  | Delete_where of string * condition
  | Update_set of string * (string * literal) list * condition
  | Select of select
  | Select_count of source * condition option
  | Explain of select
  | Explain_analyze of select
  | Analyze of string
  | Trace of statement
  | Show of string
  | History of string * int option
      (* HISTORY 'series' [LAST n]: the scraped-metrics convenience
         read over the _metrics system table *)
  | Begin
  | Commit
  | Rollback

let pp_literal ppf = function
  | L_int i -> Format.pp_print_int ppf i
  | L_float f -> Format.fprintf ppf "%g" f
  | L_string s -> Format.fprintf ppf "'%s'" s
  | L_bool b -> Format.pp_print_bool ppf b

let comparison_name = function
  | C_eq -> "="
  | C_neq -> "<>"
  | C_lt -> "<"
  | C_le -> "<="
  | C_gt -> ">"
  | C_ge -> ">="

let pp_operand ppf = function
  | O_column c -> Format.pp_print_string ppf c
  | O_literal l -> pp_literal ppf l

let rec pp_condition ppf = function
  | Compare (c, lhs, rhs) ->
    Format.fprintf ppf "%a %s %a" pp_operand lhs (comparison_name c) pp_operand rhs
  | Contains (column, literal) ->
    Format.fprintf ppf "%s CONTAINS %a" column pp_literal literal
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_condition a pp_condition b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_condition a pp_condition b
  | Not c -> Format.fprintf ppf "(NOT %a)" pp_condition c

let pp_names ppf names =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    Format.pp_print_string ppf names

let pp_source ppf = function
  | From_table table -> Format.pp_print_string ppf table
  | From_join (left, right) -> Format.fprintf ppf "%s JOIN %s" left right

let pp_select ppf s =
  Format.fprintf ppf "SELECT %a FROM %a%a%a%a"
    (fun ppf -> function
      | None -> Format.pp_print_string ppf "*"
      | Some columns -> pp_names ppf columns)
    s.columns pp_source s.source
    (fun ppf -> function
      | None -> ()
      | Some condition -> Format.fprintf ppf " WHERE %a" pp_condition condition)
    s.where
    (fun ppf -> function
      | [] -> ()
      | nests -> Format.fprintf ppf " NEST %a" pp_names nests)
    s.nests
    (fun ppf -> function
      | [] -> ()
      | unnests -> Format.fprintf ppf " UNNEST %a" pp_names unnests)
    s.unnests

let rec pp_statement ppf = function
  | Create (table, columns, order) ->
    Format.fprintf ppf "CREATE TABLE %s (%a)%a" table
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (name, ty) -> Format.fprintf ppf "%s %s" name ty))
      columns
      (fun ppf -> function
        | None -> ()
        | Some order -> Format.fprintf ppf " ORDER %a" pp_names order)
      order
  | Drop table -> Format.fprintf ppf "DROP TABLE %s" table
  | Create_view (view, base, by) ->
    Format.fprintf ppf "CREATE VIEW %s AS NEST %s BY %a" view base pp_names by
  | Drop_view view -> Format.fprintf ppf "DROP VIEW %s" view
  | Insert (table, rows) ->
    Format.fprintf ppf "INSERT INTO %s VALUES %a" table
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf row ->
           Format.fprintf ppf "(%a)"
             (Format.pp_print_list
                ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
                pp_literal)
             row))
      rows
  | Delete_values (table, row) ->
    Format.fprintf ppf "DELETE FROM %s VALUES (%a)" table
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_literal)
      row
  | Delete_where (table, condition) ->
    Format.fprintf ppf "DELETE FROM %s WHERE %a" table pp_condition condition
  | Update_set (table, assignments, condition) ->
    Format.fprintf ppf "UPDATE %s SET %a WHERE %a" table
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (column, literal) ->
           Format.fprintf ppf "%s = %a" column pp_literal literal))
      assignments pp_condition condition
  | Select s -> pp_select ppf s
  | Select_count (source, condition) ->
    Format.fprintf ppf "SELECT COUNT FROM %a%a" pp_source source
      (fun ppf -> function
        | None -> ()
        | Some c -> Format.fprintf ppf " WHERE %a" pp_condition c)
      condition
  | Explain s -> Format.fprintf ppf "EXPLAIN %a" pp_select s
  | Explain_analyze s -> Format.fprintf ppf "EXPLAIN ANALYZE %a" pp_select s
  | Analyze table -> Format.fprintf ppf "ANALYZE %s" table
  | Trace s -> Format.fprintf ppf "TRACE %a" pp_statement s
  | Show table -> Format.fprintf ppf "SHOW %s" table
  | History (series, last) ->
    Format.fprintf ppf "HISTORY '%s'%a" series
      (fun ppf -> function
        | None -> ()
        | Some n -> Format.fprintf ppf " LAST %d" n)
      last
  | Begin -> Format.pp_print_string ppf "BEGIN"
  | Commit -> Format.pp_print_string ppf "COMMIT"
  | Rollback -> Format.pp_print_string ppf "ROLLBACK"

(* The statement's leading verb — span labels and the slow-query log
   want a cheap constant-ish name, never the full rendered text. *)
let rec statement_verb = function
  | Create _ -> "create"
  | Drop _ -> "drop"
  | Create_view _ -> "create-view"
  | Drop_view _ -> "drop-view"
  | Insert _ -> "insert"
  | Delete_values _ | Delete_where _ -> "delete"
  | Update_set _ -> "update"
  | Select _ -> "select"
  | Select_count _ -> "select-count"
  | Explain _ -> "explain"
  | Explain_analyze _ -> "explain-analyze"
  | Analyze _ -> "analyze"
  | Trace inner -> "trace:" ^ statement_verb inner
  | Show _ -> "show"
  | History _ -> "history"
  | Begin -> "begin"
  | Commit -> "commit"
  | Rollback -> "rollback"
