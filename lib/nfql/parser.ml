exception Parse_error of string * int

type state = {
  mutable tokens : (Token.t * int) list;
}

let peek st =
  match st.tokens with
  | [] -> (Token.Eof, 0)
  | head :: _ -> head

let advance st =
  match st.tokens with
  | [] -> ()
  | _ :: rest -> st.tokens <- rest

let fail st message =
  let token, offset = peek st in
  raise
    (Parse_error (Printf.sprintf "%s (found %s)" message (Token.to_string token), offset))

let expect st token message =
  let found, _ = peek st in
  if found = token then advance st else fail st message

let keyword st kw =
  let token, _ = peek st in
  if Token.is_keyword token kw then begin
    advance st;
    true
  end
  else false

let expect_keyword st kw =
  if not (keyword st kw) then fail st (Printf.sprintf "expected %s" (String.uppercase_ascii kw))

let reserved =
  [
    "select"; "from"; "where"; "nest"; "unnest"; "insert"; "into"; "values";
    "delete"; "create"; "table"; "drop"; "order"; "and"; "or"; "not";
    "contains"; "show"; "true"; "false"; "update"; "set"; "count"; "join";
    "explain"; "analyze"; "trace"; "begin"; "commit"; "rollback";
    "transaction"; "work"; "view"; "as"; "by";
  ]

let ident st message =
  match peek st with
  | Token.Ident name, offset ->
    if List.mem (String.lowercase_ascii name) reserved then
      raise (Parse_error (Printf.sprintf "%s (found keyword %s)" message name, offset))
    else begin
      advance st;
      name
    end
  | _ -> fail st message

let ident_list st message =
  let rec more acc =
    let name = ident st message in
    match peek st with
    | Token.Comma, _ ->
      advance st;
      more (name :: acc)
    | _ -> List.rev (name :: acc)
  in
  more []

let literal st =
  match peek st with
  | Token.Int_lit i, _ ->
    advance st;
    Ast.L_int i
  | Token.Float_lit f, _ ->
    advance st;
    Ast.L_float f
  | Token.String_lit s, _ ->
    advance st;
    Ast.L_string s
  | Token.Ident name, _
    when String.lowercase_ascii name = "true" || String.lowercase_ascii name = "false" ->
    advance st;
    Ast.L_bool (String.lowercase_ascii name = "true")
  | _ -> fail st "expected a literal"

let literal_row st =
  expect st Token.Lparen "expected (";
  let rec more acc =
    let lit = literal st in
    match peek st with
    | Token.Comma, _ ->
      advance st;
      more (lit :: acc)
    | _ ->
      expect st Token.Rparen "expected )";
      List.rev (lit :: acc)
  in
  more []

let comparison_of_token = function
  | Token.Eq -> Some Ast.C_eq
  | Token.Neq -> Some Ast.C_neq
  | Token.Lt -> Some Ast.C_lt
  | Token.Le -> Some Ast.C_le
  | Token.Gt -> Some Ast.C_gt
  | Token.Ge -> Some Ast.C_ge
  | Token.Ident _ | Token.String_lit _ | Token.Int_lit _ | Token.Float_lit _
  | Token.Lparen | Token.Rparen | Token.Comma | Token.Semicolon | Token.Star
  | Token.Eof ->
    None

let operand st =
  match peek st with
  | Token.Ident name, _
    when not (List.mem (String.lowercase_ascii name) reserved) ->
    advance st;
    Ast.O_column name
  | _ -> Ast.O_literal (literal st)

(* cond := or_cond
   or_cond := and_cond (OR and_cond)*
   and_cond := not_cond (AND not_cond)*
   not_cond := NOT not_cond | atom
   atom := '(' cond ')' | column CONTAINS lit | operand cmp operand *)
let rec condition st = or_condition st

and or_condition st =
  let left = and_condition st in
  if keyword st "or" then Ast.Or (left, or_condition st) else left

and and_condition st =
  let left = not_condition st in
  if keyword st "and" then Ast.And (left, and_condition st) else left

and not_condition st =
  if keyword st "not" then Ast.Not (not_condition st) else atom st

and atom st =
  match peek st with
  | Token.Lparen, _ ->
    advance st;
    let inner = condition st in
    expect st Token.Rparen "expected )";
    inner
  | _ -> (
    let lhs = operand st in
    match lhs with
    | Ast.O_column column when keyword st "contains" ->
      Ast.Contains (column, literal st)
    | Ast.O_column _ | Ast.O_literal _ -> (
      let token, _ = peek st in
      match comparison_of_token token with
      | Some comparison ->
        advance st;
        Ast.Compare (comparison, lhs, operand st)
      | None -> fail st "expected a comparison operator or CONTAINS"))

let parse_source st =
  let table = ident st "expected a table name" in
  if keyword st "join" then
    Ast.From_join (table, ident st "expected a table name after JOIN")
  else Ast.From_table table

let parse_select st =
  if keyword st "count" then begin
    expect_keyword st "from";
    let source = parse_source st in
    let where = if keyword st "where" then Some (condition st) else None in
    Ast.Select_count (source, where)
  end
  else begin
    let columns =
      match peek st with
      | Token.Star, _ ->
        advance st;
        None
      | _ -> Some (ident_list st "expected a column name")
    in
    expect_keyword st "from";
    let source = parse_source st in
    let where = if keyword st "where" then Some (condition st) else None in
    let nests =
      if keyword st "nest" then ident_list st "expected a column to nest" else []
    in
    let unnests =
      if keyword st "unnest" then ident_list st "expected a column to unnest"
      else []
    in
    Ast.Select { columns; source; where; nests; unnests }
  end

(* CREATE VIEW v AS NEST base BY a, b — the BY list names the leading
   nest positions; the rest of the schema follows in schema order. *)
let parse_create_view st =
  let view = ident st "expected a view name" in
  expect_keyword st "as";
  expect_keyword st "nest";
  let base = ident st "expected a base table name" in
  expect_keyword st "by";
  let by = ident_list st "expected a partition column" in
  Ast.Create_view (view, base, by)

let parse_create st =
  if keyword st "view" then parse_create_view st
  else begin
  expect_keyword st "table";
  let table = ident st "expected a table name" in
  expect st Token.Lparen "expected (";
  let rec columns acc =
    let name = ident st "expected a column name" in
    let ty = ident st "expected a type name" in
    match peek st with
    | Token.Comma, _ ->
      advance st;
      columns ((name, ty) :: acc)
    | _ ->
      expect st Token.Rparen "expected )";
      List.rev ((name, ty) :: acc)
  in
  let cols = columns [] in
  let order =
    if keyword st "order" then Some (ident_list st "expected an order column")
    else None
  in
  Ast.Create (table, cols, order)
  end

let parse_insert st =
  expect_keyword st "into";
  let table = ident st "expected a table name" in
  expect_keyword st "values";
  let rec rows acc =
    let row = literal_row st in
    match peek st with
    | Token.Comma, _ ->
      advance st;
      rows (row :: acc)
    | _ -> List.rev (row :: acc)
  in
  Ast.Insert (table, rows [])

let parse_delete st =
  expect_keyword st "from";
  let table = ident st "expected a table name" in
  if keyword st "values" then Ast.Delete_values (table, literal_row st)
  else if keyword st "where" then Ast.Delete_where (table, condition st)
  else fail st "expected VALUES or WHERE"

let parse_update st =
  let table = ident st "expected a table name" in
  expect_keyword st "set";
  let rec assignments acc =
    let column = ident st "expected a column name" in
    expect st Token.Eq "expected =";
    let lit = literal st in
    if fst (peek st) = Token.Comma then begin
      advance st;
      assignments ((column, lit) :: acc)
    end
    else List.rev ((column, lit) :: acc)
  in
  let pairs = assignments [] in
  expect_keyword st "where";
  Ast.Update_set (table, pairs, condition st)

let rec statement st =
  if keyword st "trace" then Ast.Trace (statement st)
  else if keyword st "select" then parse_select st
  else if keyword st "explain" then begin
    let analyze = keyword st "analyze" in
    expect_keyword st "select";
    match parse_select st with
    | Ast.Select s -> if analyze then Ast.Explain_analyze s else Ast.Explain s
    | Ast.Select_count _ -> fail st "EXPLAIN COUNT is not supported"
    | Ast.Create _ | Ast.Drop _ | Ast.Create_view _ | Ast.Drop_view _
    | Ast.Insert _ | Ast.Delete_values _
    | Ast.Delete_where _ | Ast.Update_set _ | Ast.Explain _
    | Ast.Explain_analyze _ | Ast.Analyze _ | Ast.Trace _ | Ast.Show _
    | Ast.History _ | Ast.Begin | Ast.Commit | Ast.Rollback ->
      assert false
  end
  else if keyword st "analyze" then
    Ast.Analyze (ident st "expected a table name after ANALYZE")
  else if keyword st "create" then parse_create st
  else if keyword st "drop" then begin
    if keyword st "view" then Ast.Drop_view (ident st "expected a view name")
    else begin
      expect_keyword st "table";
      Ast.Drop (ident st "expected a table name")
    end
  end
  else if keyword st "insert" then parse_insert st
  else if keyword st "delete" then parse_delete st
  else if keyword st "update" then parse_update st
  else if keyword st "show" then Ast.Show (ident st "expected a table name")
  else if keyword st "history" then begin
    (* Series names carry dots and braces (query.seconds.p99), so the
       usual spelling is a string literal; a plain identifier also
       works for the simple ones. *)
    let series =
      match peek st with
      | Token.String_lit s, _ ->
        advance st;
        s
      | _ -> ident st "expected a series name (string literal)"
    in
    let last =
      if keyword st "last" then begin
        match peek st with
        | Token.Int_lit n, offset ->
          if n <= 0 then
            raise (Parse_error (Printf.sprintf "LAST %d must be positive" n, offset));
          advance st;
          Some n
        | _ -> fail st "expected a sample count after LAST"
      end
      else None
    in
    Ast.History (series, last)
  end
  else if keyword st "begin" then begin
    (* BEGIN [TRANSACTION | WORK] *)
    ignore (keyword st "transaction" || keyword st "work");
    Ast.Begin
  end
  else if keyword st "commit" then begin
    ignore (keyword st "transaction" || keyword st "work");
    Ast.Commit
  end
  else if keyword st "rollback" then begin
    ignore (keyword st "transaction" || keyword st "work");
    Ast.Rollback
  end
  else fail st "expected a statement"

let finish_statement st =
  while fst (peek st) = Token.Semicolon do
    advance st
  done

let parse_statement input =
  let st = { tokens = Lexer.tokenize input } in
  let parsed = statement st in
  finish_statement st;
  (match peek st with
  | Token.Eof, _ -> ()
  | _ -> fail st "trailing input after statement");
  parsed

let parse_script input =
  let st = { tokens = Lexer.tokenize input } in
  let rec loop acc =
    finish_statement st;
    match peek st with
    | Token.Eof, _ -> List.rev acc
    | _ ->
      let parsed = statement st in
      loop (parsed :: acc)
  in
  loop []
