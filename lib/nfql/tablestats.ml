open Relational
open Nfr_core

type attr_stats = {
  a_attr : Attribute.t;
  a_class : Classify.cardinality;
  a_distinct : int;
  a_mean_posting : float;
  a_max_posting : int;
  a_fixed : bool;
}

type t = {
  s_rows : int;
  s_facts : int;
  s_attrs : attr_stats list;
}

let collect nfr =
  {
    s_rows = Nfr.cardinality nfr;
    s_facts = Nfr.expansion_size nfr;
    s_attrs =
      List.map
        (fun attribute ->
          let p = Classify.profile nfr attribute in
          {
            a_attr = attribute;
            a_class = p.Classify.p_class;
            a_distinct = p.Classify.p_distinct;
            a_mean_posting = p.Classify.p_mean_group;
            a_max_posting = p.Classify.p_max_group;
            a_fixed = p.Classify.p_fixed;
          })
        (Schema.attributes (Nfr.schema nfr));
  }

let find stats attribute =
  List.find_opt (fun a -> Attribute.equal a.a_attr attribute) stats.s_attrs

(* Both back ends return this exact text for ANALYZE, so the
   differential suite can compare them verbatim. *)
let summary name stats =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf "analyzed %s: %d NFR tuple(s), %d fact(s)" name stats.s_rows
       stats.s_facts);
  List.iter
    (fun a ->
      Buffer.add_string buffer
        (Printf.sprintf
           "\n  %s: class %s, %d distinct value(s), postings mean %.2f max %d%s"
           (Attribute.name a.a_attr)
           (Classify.cardinality_name a.a_class)
           a.a_distinct a.a_mean_posting a.a_max_posting
           (if a.a_fixed then ", fixed" else "")))
    stats.s_attrs;
  Buffer.contents buffer
