open Relational
module Ntuple_set = Set.Make (Ntuple)

module Key = struct
  type t = int * Value.t

  let equal (pa, va) (pb, vb) = pa = pb && Value.equal va vb
  let hash (position, value) = (position * 31) + Value.hash value
end

module Table = Hashtbl.Make (Key)

type t = {
  table : Ntuple_set.t Table.t;
  skip : int list;  (* positions never indexed; see [create] *)
  mutable members : Ntuple_set.t;
}

let create ?(skip = []) () =
  { table = Table.create 256; skip; members = Ntuple_set.empty }

let skipped t position = List.mem position t.skip

let update_key t key f =
  let current = Option.value ~default:Ntuple_set.empty (Table.find_opt t.table key) in
  let next = f current in
  if Ntuple_set.is_empty next then Table.remove t.table key
  else Table.replace t.table key next

let iter_keys t nt f =
  List.iteri
    (fun position component ->
      if not (skipped t position) then
        Vset.fold (fun value () -> f (position, value)) component ())
    (Ntuple.components nt)

let add t nt =
  t.members <- Ntuple_set.add nt t.members;
  iter_keys t nt (fun key -> update_key t key (Ntuple_set.add nt))

let remove t nt =
  t.members <- Ntuple_set.remove nt t.members;
  iter_keys t nt (fun key -> update_key t key (Ntuple_set.remove nt))

let posting t ~position value =
  Option.value ~default:Ntuple_set.empty (Table.find_opt t.table (position, value))

let contains_value nt (position, value) =
  Vset.mem value (Ntuple.component nt position)

let containing_all t constraints =
  match constraints with
  | [] -> invalid_arg "Postings.containing_all: no constraints"
  | _ ->
    (* Constraints on skipped positions have no posting list; narrow
       with the indexed ones and verify the rest per survivor. When
       every constraint is skipped, filter the member set directly. *)
    let indexed, unindexed =
      List.partition (fun (position, _) -> not (skipped t position)) constraints
    in
    let narrowed =
      match indexed with
      | [] -> t.members
      | indexed ->
        let postings =
          List.map (fun (position, value) -> posting t ~position value) indexed
        in
        let sorted =
          List.sort
            (fun a b -> Int.compare (Ntuple_set.cardinal a) (Ntuple_set.cardinal b))
            postings
        in
        (match sorted with
        | [] -> Ntuple_set.empty
        | smallest :: rest -> List.fold_left Ntuple_set.inter smallest rest)
    in
    if unindexed = [] then narrowed
    else
      Ntuple_set.filter
        (fun nt -> List.for_all (contains_value nt) unindexed)
        narrowed

let cardinality t = Ntuple_set.cardinal t.members
