(** Inverted postings over NFR tuples.

    Maps [(position, value)] to the set of NFR tuples whose component
    at that position contains the value. This is the access structure
    that makes the Sec. 4 primitives sub-linear: [candt]'s candidate
    must componentwise contain the probe tuple everywhere except one
    position, and [searcht]'s containing tuple must contain it
    everywhere — both are posting-list intersections. The paper scopes
    time complexity out as "depend[ing] heavily on physical
    representation"; this module is that physical representation. *)

open Relational

module Ntuple_set : Set.S with type elt = Ntuple.t

type t

val create : ?skip:int list -> unit -> t
(** [skip] lists schema positions that are never indexed — for
    components that grow large (a metrics history's timestamp sets),
    where maintaining one posting per element on every add/remove
    dominates update cost. Queries stay exact: {!containing_all}
    verifies constraints on skipped positions against each candidate
    instead of intersecting postings. Default: index everything. *)

val add : t -> Ntuple.t -> unit
(** Index every (position, value) of the tuple (skipped positions
    excepted). *)

val remove : t -> Ntuple.t -> unit

val posting : t -> position:int -> Value.t -> Ntuple_set.t
(** Tuples whose component at [position] contains the value (empty set
    when none). *)

val containing_all : t -> (int * Value.t) list -> Ntuple_set.t
(** Tuples containing every constrained value: the smallest-first
    intersection of the indexed constraints' postings, then a direct
    membership check per survivor for constraints on skipped
    positions. @raise Invalid_argument on []. *)

val cardinality : t -> int
(** Number of indexed tuples. *)
