open Relational

let select_contains attribute value r =
  let position = Schema.position (Nfr.schema r) attribute in
  Nfr.filter (fun nt -> Vset.mem value (Ntuple.component nt position)) r

(* Split a predicate into conjuncts; each conjunct usable for
   componentwise filtering iff it mentions at most one attribute. *)
let rec conjuncts = function
  | Predicate.And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let single_attribute p =
  match Attribute.Set.elements (Predicate.attributes p) with
  | [] -> Some None
  | [ attribute ] -> Some (Some attribute)
  | _ :: _ :: _ -> None

let componentwise_selectable predicate =
  List.for_all (fun p -> single_attribute p <> None) (conjuncts predicate)

(* Evaluate a single-attribute predicate on one candidate value by
   building a row holding that value at the attribute's position (the
   other positions are never read). *)
let eval_on_value schema p position value =
  let row = Array.make (Schema.degree schema) value in
  row.(position) <- value;
  Predicate.eval schema p (Tuple.of_array_unchecked row)

let filter_componentwise schema parts nt =
  let filter_one nt part =
    match part with
    | None, p ->
      (* Attribute-free conjunct: constant truth value. *)
      if Predicate.eval schema p (Tuple.of_array_unchecked (Array.make (Schema.degree schema) (Value.of_int 0)))
      then Some nt
      else None
    | Some attribute, p ->
      let position = Schema.position schema attribute in
      let kept =
        List.filter
          (fun value -> eval_on_value schema p position value)
          (Vset.elements (Ntuple.component nt position))
      in
      if kept = [] then None
      else Some (Ntuple.with_component nt position (Vset.of_list kept))
  in
  List.fold_left
    (fun acc part ->
      match acc with None -> None | Some nt -> filter_one nt part)
    (Some nt) parts

(* Classification of a predicate for per-tuple selection: either every
   conjunct mentions at most one attribute (componentwise filtering
   applies) or the predicate is correlated (per-tuple expansion). *)
let classify predicate =
  let classified =
    List.map (fun p -> (single_attribute p, p)) (conjuncts predicate)
  in
  if List.for_all (fun (single, _) -> single <> None) classified then
    Some
      (List.map
         (fun (single, p) ->
           match single with
           | Some binding -> (binding, p)
           | None -> assert false)
         classified)
  else None

let select_tuple schema predicate nt =
  (match Predicate.validate schema predicate with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Nalgebra.select_tuple: " ^ msg));
  match classify predicate with
  | Some parts -> (
    match filter_componentwise schema parts nt with
    | Some kept -> [ kept ]
    | None -> [])
  | None ->
    (* Correlated predicate: expand this tuple. *)
    List.filter_map
      (fun tuple ->
        if Predicate.eval schema predicate tuple then
          Some (Ntuple.of_tuple tuple)
        else None)
      (Ntuple.expand nt)

let select predicate ~order r =
  let schema = Nfr.schema r in
  (match Predicate.validate schema predicate with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Nalgebra.select: " ^ msg));
  let filtered =
    Nfr.fold
      (fun nt acc ->
        List.fold_left
          (fun acc kept -> Nfr.add acc kept)
          acc
          (select_tuple schema predicate nt))
      r (Nfr.empty schema)
  in
  Nest.canonicalize filtered order

let project attrs ~order r =
  let schema = Nfr.schema r in
  let target = Schema.project schema attrs in
  let positions = List.map (Schema.position schema) attrs in
  let projected =
    Nfr.fold
      (fun nt acc ->
        let components =
          List.map (fun position -> Ntuple.component nt position) positions
        in
        Nfr.add acc (Ntuple.of_sets_unchecked (Array.of_list components)))
      r (Nfr.empty target)
  in
  (* Componentwise projection may create overlapping expansions; going
     through the flattening restores the invariant before re-nesting. *)
  Nest.canonical (Nfr.flatten projected) order

let natural_join a b =
  let schema_a = Nfr.schema a and schema_b = Nfr.schema b in
  let shared = Schema.common schema_a schema_b in
  let target = Schema.union schema_a schema_b in
  let extra =
    List.filter
      (fun attribute -> not (Schema.mem schema_a attribute))
      (Schema.attributes schema_b)
  in
  Nfr.fold
    (fun nt_a acc ->
      Nfr.fold
        (fun nt_b acc ->
          let intersections =
            List.map
              (fun attribute ->
                Vset.inter
                  (Ntuple.field schema_a nt_a attribute)
                  (Ntuple.field schema_b nt_b attribute))
              shared
          in
          if List.exists Option.is_none intersections then acc
          else begin
            let replace nt =
              List.fold_left2
                (fun nt attribute intersection ->
                  match intersection with
                  | Some set ->
                    Ntuple.with_component nt
                      (Schema.position schema_a attribute)
                      set
                  | None -> assert false)
                nt shared intersections
            in
            let left = replace nt_a in
            let right_extra =
              List.map (fun attribute -> Ntuple.field schema_b nt_b attribute) extra
            in
            let components = Ntuple.components left @ right_extra in
            Nfr.add acc (Ntuple.of_sets_unchecked (Array.of_list components))
          end)
        b acc)
    a (Nfr.empty target)

let product a b =
  let schema_a = Nfr.schema a and schema_b = Nfr.schema b in
  if not (Schema.disjoint schema_a schema_b) then
    invalid_arg "Nalgebra.product: schemas must be disjoint";
  let target = Schema.union schema_a schema_b in
  Nfr.fold
    (fun nt_a acc ->
      Nfr.fold
        (fun nt_b acc ->
          Nfr.add acc
            (Ntuple.of_sets_unchecked
               (Array.of_list (Ntuple.components nt_a @ Ntuple.components nt_b))))
        b acc)
    a (Nfr.empty target)

let union ~order a b =
  let flat_a = Nfr.flatten a and flat_b = Nfr.flatten b in
  Nest.canonical (Algebra.union flat_a flat_b) order

let diff ~order a b =
  let flat_a = Nfr.flatten a and flat_b = Nfr.flatten b in
  Nest.canonical (Algebra.diff flat_a flat_b) order

let rename pairs r =
  let target = Schema.rename (Nfr.schema r) pairs in
  Nfr.fold (fun nt acc -> Nfr.add acc nt) r (Nfr.empty target)

(* Tuple-level join test: every shared component intersects. *)
let joins_with schema_a schema_b shared nt_a nt_b =
  List.for_all
    (fun attribute ->
      not
        (Vset.disjoint
           (Ntuple.field schema_a nt_a attribute)
           (Ntuple.field schema_b nt_b attribute)))
    shared

let semijoin a b =
  let schema_a = Nfr.schema a and schema_b = Nfr.schema b in
  let shared = Schema.common schema_a schema_b in
  if shared = [] then if Nfr.is_empty b then Nfr.empty schema_a else a
  else
    Nfr.filter
      (fun nt_a -> Nfr.exists (joins_with schema_a schema_b shared nt_a) b)
      a

let antijoin a b =
  let schema_a = Nfr.schema a and schema_b = Nfr.schema b in
  let shared = Schema.common schema_a schema_b in
  if shared = [] then if Nfr.is_empty b then a else Nfr.empty schema_a
  else
    Nfr.filter
      (fun nt_a ->
        not (Nfr.exists (joins_with schema_a schema_b shared nt_a) b))
      a

let divide ~order a b =
  let quotient = Algebra.divide (Nfr.flatten a) (Nfr.flatten b) in
  Nest.canonical quotient order

let group_sizes r attribute =
  let position = Schema.position (Nfr.schema r) attribute in
  let counts : (Value.t, int) Hashtbl.t = Hashtbl.create 32 in
  Nfr.iter
    (fun nt ->
      (* Facts carrying value v at [position]: the product of the
         other components' sizes. *)
      let others =
        List.fold_left
          (fun acc (i, component) ->
            if i = position then acc else acc * Vset.cardinal component)
          1
          (List.mapi (fun i c -> (i, c)) (Ntuple.components nt))
      in
      Vset.fold
        (fun value () ->
          let current = Option.value ~default:0 (Hashtbl.find_opt counts value) in
          Hashtbl.replace counts value (current + others))
        (Ntuple.component nt position)
        ())
    r;
  Hashtbl.fold (fun value count acc -> (value, count) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Value.compare a b)

let nest = Nest.nest
let unnest = Nest.unnest
