open Relational

let check_permutation schema order =
  let attrs = Schema.attributes schema in
  let sorted_order = List.sort Attribute.compare order in
  let sorted_attrs = List.sort Attribute.compare attrs in
  if not (List.equal Attribute.equal sorted_order sorted_attrs) then
    invalid_arg
      (Format.asprintf "not a permutation of %a: [%a]" Schema.pp schema
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
            Attribute.pp)
         order)

(* Grouping key: all components except one position. *)
module Key = struct
  type t = Vset.t list

  let compare = List.compare Vset.compare
end

module Key_map = Map.Make (Key)

let key_of position nt =
  List.filteri (fun i _ -> i <> position) (Ntuple.components nt)

let nest r attribute =
  Obs.Span.with_span Obs.Span.Nest_apply (Attribute.name attribute)
  @@ fun nest_span ->
  let schema = Nfr.schema r in
  let position = Schema.position schema attribute in
  let groups =
    Nfr.fold
      (fun nt groups ->
        let key = key_of position nt in
        let merged =
          match Key_map.find_opt key groups with
          | None -> Ntuple.component nt position
          | Some set -> Vset.union set (Ntuple.component nt position)
        in
        Key_map.add key merged groups)
      r Key_map.empty
  in
  let nested =
    Key_map.fold
      (fun key set acc ->
        let components =
          (* Reinsert the nested component at its position. *)
          let rec weave i = function
            | rest when i = position -> set :: weave (i + 1) rest
            | [] -> []
            | hd :: tl -> hd :: weave (i + 1) tl
          in
          weave 0 key
        in
        Nfr.add acc (Ntuple.of_sets_unchecked (Array.of_list components)))
      groups
      (Nfr.empty schema)
  in
  Obs.Span.set_rows nest_span (Nfr.cardinality nested);
  nested

(* A tiny deterministic LCG for pair-order shuffling in the literal
   Definition 4 implementation. *)
let lcg_next state = (state * 25214903917) + 11

let nest_by_composition ?(seed = 0) r attribute =
  Obs.Span.with_span Obs.Span.Nest_fixpoint
    ("nest-by-composition " ^ Attribute.name attribute)
  @@ fun fixpoint_span ->
  Obs.Registry.incr Obs.Registry.global "nest.fixpoints_total";
  let schema = Nfr.schema r in
  let position = Schema.position schema attribute in
  let rec loop r state =
    (* One Definition-4 step per span: the recursive call stays
       outside so steps are siblings under the fixpoint, not a chain. *)
    let step =
      Obs.Span.with_span Obs.Span.Compose_step "pick+compose" @@ fun _ ->
      let tuples = Array.of_list (Nfr.ntuples r) in
      let n = Array.length tuples in
      let pairs = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          match Ntuple.composable tuples.(i) tuples.(j) with
          | Some c when c = position -> pairs := (i, j) :: !pairs
          | Some _ | None -> ()
        done
      done;
      match !pairs with
      | [] -> `Fixed
      | candidates ->
        let state = lcg_next state in
        let candidates = Array.of_list candidates in
        (* [abs min_int] is still negative (no positive counterpart in
           two's complement), so mask the sign bit off instead. *)
        let pick = state land max_int mod Array.length candidates in
        let i, j = candidates.(pick) in
        let composed = Ntuple.compose tuples.(i) tuples.(j) position in
        `Composed
          (Nfr.add (Nfr.remove (Nfr.remove r tuples.(i)) tuples.(j)) composed, state)
    in
    match step with
    | `Fixed -> r
    | `Composed (r', state) ->
      Obs.Registry.incr Obs.Registry.global "nest.compose_steps_total";
      Obs.Span.add_rows fixpoint_span 1;
      loop r' state
  in
  loop r seed

let nest_sequence r order = List.fold_left nest r order

let unnest r attribute =
  Obs.Span.with_span Obs.Span.Unnest_apply (Attribute.name attribute)
  @@ fun unnest_span ->
  let schema = Nfr.schema r in
  let position = Schema.position schema attribute in
  let flatter =
    Nfr.fold
      (fun nt acc ->
        Vset.fold
          (fun value acc ->
            Nfr.add acc
              (Ntuple.with_component nt position (Vset.singleton value)))
          (Ntuple.component nt position)
          acc)
      r
      (Nfr.empty schema)
  in
  Obs.Span.set_rows unnest_span (Nfr.cardinality flatter);
  flatter

let unnest_all r =
  List.fold_left unnest r (Schema.attributes (Nfr.schema r))

let canonical flat order =
  Obs.Span.with_span Obs.Span.Nest_fixpoint "canonical" @@ fun canonical_span ->
  check_permutation (Relation.schema flat) order;
  let nested = nest_sequence (Nfr.of_relation flat) order in
  Obs.Span.set_rows canonical_span (Nfr.cardinality nested);
  nested

let canonicalize r order = canonical (Nfr.flatten r) order
let is_canonical r order = Nfr.equal r (canonicalize r order)

let all_canonical_forms flat =
  List.map
    (fun order -> (order, canonical flat order))
    (Schema.permutations (Relation.schema flat))

let smallest_canonical flat =
  match all_canonical_forms flat with
  | [] -> invalid_arg "smallest_canonical: impossible (no permutations)"
  | first :: rest ->
    List.fold_left
      (fun ((_, best) as acc) ((_, candidate) as entry) ->
        if Nfr.cardinality candidate < Nfr.cardinality best then entry else acc)
      first rest
