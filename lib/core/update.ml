open Relational

type stats = {
  mutable compositions : int;
  mutable decompositions : int;
  mutable candidate_scans : int;
  mutable recons_calls : int;
}

let fresh_stats () =
  { compositions = 0; decompositions = 0; candidate_scans = 0; recons_calls = 0 }

let add_stats acc s =
  acc.compositions <- acc.compositions + s.compositions;
  acc.decompositions <- acc.decompositions + s.decompositions;
  acc.candidate_scans <- acc.candidate_scans + s.candidate_scans;
  acc.recons_calls <- acc.recons_calls + s.recons_calls

exception Update_diverged of string
exception Not_in_relation

(* Fuel: Theorem A-4 bounds recons work by a function of the degree
   only; 100_000 calls per update is far beyond any legal run. *)
let fuel_limit = 100_000

(* Physical layers need to know which NFR tuples an update touched;
   the journal records them in order. *)
type journal_entry =
  | Added of Ntuple.t
  | Removed of Ntuple.t

type context = {
  positions : int array;  (* positions.(j) = schema position of order.(j) *)
  n : int;
  stats : stats;
  mutable body : Nfr.t;
  index : Postings.t option;  (* kept in sync with [body] when present *)
  mutable journal : journal_entry list;  (* newest first *)
  mutable fuel : int;
}

let ctx_add ctx nt =
  ctx.body <- Nfr.add ctx.body nt;
  ctx.journal <- Added nt :: ctx.journal;
  Option.iter (fun index -> Postings.add index nt) ctx.index

let ctx_remove ctx nt =
  ctx.body <- Nfr.remove ctx.body nt;
  ctx.journal <- Removed nt :: ctx.journal;
  Option.iter (fun index -> Postings.remove index nt) ctx.index

let component_at ctx nt j = Ntuple.component nt ctx.positions.(j)

(* Candidate conditions at position [m] for probe [t] (Sec. 4's
   "candidate tuple" generalized to set components):
   equality before m, componentwise containment after m, disjointness
   at m. *)
let candidate_at ctx t m s =
  let rec before j =
    j >= m
    || (Vset.equal (component_at ctx s j) (component_at ctx t j) && before (j + 1))
  in
  let rec after j =
    j >= ctx.n
    || (Vset.subset (component_at ctx t j) (component_at ctx s j) && after (j + 1))
  in
  Vset.disjoint (component_at ctx s m) (component_at ctx t m)
  && before 0
  && after (m + 1)

(* Scan-based candidate search: examine every tuple per m. *)
let candidates_by_scan ctx t m =
  Nfr.fold
    (fun s acc ->
      ctx.stats.candidate_scans <- ctx.stats.candidate_scans + 1;
      if candidate_at ctx t m s then s :: acc else acc)
    ctx.body []

(* Index-based candidate search: a candidate must contain every value
   of [t] at every position except m; intersect those postings, then
   verify the exact conditions. *)
let candidates_by_index ctx index t m =
  let constraints = ref [] in
  for j = 0 to ctx.n - 1 do
    if j <> m then
      Vset.fold
        (fun value () ->
          constraints := (ctx.positions.(j), value) :: !constraints)
        (component_at ctx t j)
        ()
  done;
  match !constraints with
  | [] -> candidates_by_scan ctx t m (* degree-1 relation: no filter *)
  | constraints ->
    Postings.Ntuple_set.fold
      (fun s acc ->
        ctx.stats.candidate_scans <- ctx.stats.candidate_scans + 1;
        if candidate_at ctx t m s then s :: acc else acc)
      (Postings.containing_all index constraints)
      []

(* candt: the candidate tuple of [t] and the minimal index [m]
   (0-based here; the paper counts from 1). *)
let candt ctx t =
  let rec try_m m =
    if m >= ctx.n then None
    else begin
      let matches =
        match ctx.index with
        | Some index -> candidates_by_index ctx index t m
        | None -> candidates_by_scan ctx t m
      in
      match matches with
      | [] -> try_m (m + 1)
      | [ s ] -> Some (s, m)
      | _ :: _ :: _ ->
        (* Lemma A-1 says this cannot happen on a canonical NFR. *)
        raise
          (Update_diverged
             (Printf.sprintf "Lemma A-1 violated: %d candidates at position %d"
                (List.length matches) m))
    end
  in
  try_m 0

let rec recons ctx t =
  ctx.fuel <- ctx.fuel - 1;
  if ctx.fuel <= 0 then
    raise (Update_diverged "recons exceeded its fuel (Theorem A-4 violated?)");
  ctx.stats.recons_calls <- ctx.stats.recons_calls + 1;
  match candt ctx t with
  | None -> ctx_add ctx t
  | Some (p, m) ->
    ctx_remove ctx p;
    (* Unnest p on positions n-1 .. m+1 down to t's values, recursing
       on each remainder, then compose at m. *)
    let rec peel p j =
      if j <= m then p
      else begin
        let extracted, remainder =
          Ntuple.decompose_set p ctx.positions.(j) (component_at ctx t j)
        in
        (match remainder with
        | Some rest ->
          ctx.stats.decompositions <- ctx.stats.decompositions + 1;
          recons ctx rest
        | None -> ());
        peel extracted (j - 1)
      end
    in
    let peeled = peel p (ctx.n - 1) in
    let composed = Ntuple.compose peeled t ctx.positions.(m) in
    ctx.stats.compositions <- ctx.stats.compositions + 1;
    recons ctx composed

let make_context ?stats ?index ~order r =
  Nest.check_permutation (Nfr.schema r) order;
  let schema = Nfr.schema r in
  {
    positions = Array.of_list (List.map (Schema.position schema) order);
    n = List.length order;
    stats = (match stats with Some s -> s | None -> fresh_stats ());
    body = r;
    index;
    journal = [];
    fuel = fuel_limit;
  }

(* Peel the simple tuple [simple] out of its containing tuple [q],
   outermost nest position first, reconstructing each remainder; the
   caller has already removed [q] from the store. *)
let peel_out ctx q simple =
  let rec peel q j =
    if j < 0 then q
    else begin
      let extracted, remainder =
        Ntuple.decompose_set q ctx.positions.(j) (component_at ctx simple j)
      in
      (match remainder with
      | Some rest ->
        ctx.stats.decompositions <- ctx.stats.decompositions + 1;
        recons ctx rest
      | None -> ());
      peel extracted (j - 1)
    end
  in
  let peeled = peel q (ctx.n - 1) in
  (* peeled is now exactly the simple tuple; drop it (deletet). *)
  assert (Ntuple.equal peeled simple)

let lemma_a1_candidates ~order r probe ~position =
  let ctx = make_context ~order r in
  List.rev (candidates_by_scan ctx probe position)

let insert ?stats ~order r tuple =
  if Nfr.member_tuple r tuple then r
  else begin
    let ctx = make_context ?stats ~order r in
    recons ctx (Ntuple.of_tuple tuple);
    ctx.body
  end

let delete ?stats ~order r tuple =
  match Nfr.find_containing r tuple with
  | None -> raise Not_in_relation
  | Some q ->
    let ctx = make_context ?stats ~order r in
    ctx_remove ctx q;
    peel_out ctx q (Ntuple.of_tuple tuple);
    ctx.body

let insert_all ?stats ~order r tuples =
  List.fold_left (fun r tuple -> insert ?stats ~order r tuple) r tuples

let delete_all ?stats ~order r tuples =
  List.fold_left (fun r tuple -> delete ?stats ~order r tuple) r tuples

let build ?stats ~order flat =
  insert_all ?stats ~order (Nfr.empty (Relation.schema flat)) (Relation.tuples flat)

module Store = struct
  type t = {
    order : Attribute.t list;
    index : Postings.t;
    mutable nfr : Nfr.t;
  }

  let of_nfr ?(unindexed = []) ~order nfr =
    Nest.check_permutation (Nfr.schema nfr) order;
    let schema = Nfr.schema nfr in
    let skip = List.map (Schema.position schema) unindexed in
    let index = Postings.create ~skip () in
    Nfr.iter (Postings.add index) nfr;
    { order; index; nfr }

  let create ?unindexed ~order schema =
    of_nfr ?unindexed ~order (Nfr.empty schema)
  let snapshot store = store.nfr
  let cardinality store = Nfr.cardinality store.nfr
  let order store = store.order

  (* Indexed membership: the containing tuple must contain every value
     of the probe. *)
  let find_containing store tuple =
    let constraints =
      List.mapi (fun position value -> (position, value)) (Tuple.values tuple)
    in
    let hits = Postings.containing_all store.index constraints in
    Postings.Ntuple_set.choose_opt hits

  let member store tuple = find_containing store tuple <> None

  let context ?stats store =
    make_context ?stats ~index:store.index ~order:store.order store.nfr

  let insert_journaled ?stats store tuple =
    if member store tuple then []
    else begin
      let ctx = context ?stats store in
      recons ctx (Ntuple.of_tuple tuple);
      store.nfr <- ctx.body;
      List.rev ctx.journal
    end

  let insert ?stats store tuple = insert_journaled ?stats store tuple <> []

  let delete_journaled ?stats store tuple =
    match find_containing store tuple with
    | None -> raise Not_in_relation
    | Some q ->
      let ctx = context ?stats store in
      ctx_remove ctx q;
      peel_out ctx q (Ntuple.of_tuple tuple);
      store.nfr <- ctx.body;
      List.rev ctx.journal

  let delete ?stats store tuple = ignore (delete_journaled ?stats store tuple)

  (* Replay journal entries against the canonical layers directly,
     bypassing the recons machinery. Undo (transaction abort after a
     partial application) inverts an already-derived journal; the
     entries are trusted to restore a previously-held state, so no
     canonical-form reasoning is needed here. *)
  let apply_journal store entries =
    List.iter
      (function
        | Added nt ->
          store.nfr <- Nfr.add store.nfr nt;
          Postings.add store.index nt
        | Removed nt ->
          store.nfr <- Nfr.remove store.nfr nt;
          Postings.remove store.index nt)
      entries
end

let invert_journal entries =
  List.rev_map
    (function Added nt -> Removed nt | Removed nt -> Added nt)
    entries
