open Relational

type cardinality =
  | One_to_one
  | N_to_one
  | One_to_n
  | M_to_n

let cardinality_name = function
  | One_to_one -> "1:1"
  | N_to_one -> "n:1"
  | One_to_n -> "1:n"
  | M_to_n -> "m:n"

let classify r attribute =
  let position = Schema.position (Nfr.schema r) attribute in
  (* Count, per value, the number of tuples containing it, and whether
     it ever occurs inside a compound component. *)
  let occurrences : (Value.t, int) Hashtbl.t = Hashtbl.create 32 in
  let compound = ref false in
  Nfr.iter
    (fun nt ->
      let component = Ntuple.component nt position in
      if not (Vset.is_singleton component) then compound := true;
      Vset.fold
        (fun value () ->
          let count = Option.value ~default:0 (Hashtbl.find_opt occurrences value) in
          Hashtbl.replace occurrences value (count + 1))
        component ())
    r;
  let recurring = Hashtbl.fold (fun _ count acc -> acc || count > 1) occurrences false in
  match !compound, recurring with
  | false, false -> One_to_one
  | true, false -> N_to_one
  | false, true -> One_to_n
  | true, true -> M_to_n

let classify_all r =
  List.map (fun attribute -> (attribute, classify r attribute)) (Schema.attributes (Nfr.schema r))

type profile = {
  p_class : cardinality;
  p_distinct : int;
  p_max_group : int;
  p_mean_group : float;
  p_fixed : bool;
}

(* Single-pass Def. 6 + Def. 7 profile. Fixedness on a singleton set
   {a} asks that no value combination on {a} — i.e. no single value —
   is contained in two distinct tuples, which is exactly Def. 6's
   "recurring" test: [p_fixed] holds iff the class is on the [:1]
   side. The statistics collector (ANALYZE) leans on this so it never
   pays {!fixed_on}'s pairwise O(n²) scan per attribute. *)
let profile r attribute =
  let position = Schema.position (Nfr.schema r) attribute in
  let occurrences : (Value.t, int) Hashtbl.t = Hashtbl.create 64 in
  let compound = ref false in
  Nfr.iter
    (fun nt ->
      let component = Ntuple.component nt position in
      if not (Vset.is_singleton component) then compound := true;
      Vset.fold
        (fun value () ->
          let count = Option.value ~default:0 (Hashtbl.find_opt occurrences value) in
          Hashtbl.replace occurrences value (count + 1))
        component ())
    r;
  let distinct = Hashtbl.length occurrences in
  let total, max_group =
    Hashtbl.fold
      (fun _ count (total, max_group) -> (total + count, max count max_group))
      occurrences (0, 0)
  in
  let recurring = max_group > 1 in
  {
    p_class =
      (match !compound, recurring with
      | false, false -> One_to_one
      | true, false -> N_to_one
      | false, true -> One_to_n
      | true, true -> M_to_n);
    p_distinct = distinct;
    p_max_group = max_group;
    p_mean_group = (if distinct = 0 then 0. else float_of_int total /. float_of_int distinct);
    p_fixed = not recurring;
  }

let fixed_on r attrs =
  if Attribute.Set.is_empty attrs then
    invalid_arg "Classify.fixed_on: empty attribute set";
  let schema = Nfr.schema r in
  let positions = List.map (Schema.position schema) (Attribute.Set.elements attrs) in
  let tuples = Array.of_list (Nfr.ntuples r) in
  let n = Array.length tuples in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let shares_combination =
        List.for_all
          (fun position ->
            not
              (Vset.disjoint
                 (Ntuple.component tuples.(i) position)
                 (Ntuple.component tuples.(j) position)))
          positions
      in
      if shares_combination then ok := false
    done
  done;
  !ok

let fixed_sets r =
  let schema = Nfr.schema r in
  if Schema.degree schema > 12 then
    invalid_arg "Classify.fixed_sets: schema degree > 12";
  let attrs = Schema.attributes schema in
  let rec subsets = function
    | [] -> [ Attribute.Set.empty ]
    | x :: rest ->
      let smaller = subsets rest in
      smaller @ List.map (Attribute.Set.add x) smaller
  in
  let candidates =
    List.filter (fun set -> not (Attribute.Set.is_empty set)) (subsets attrs)
    |> List.sort (fun a b ->
           let c = Int.compare (Attribute.Set.cardinal a) (Attribute.Set.cardinal b) in
           if c <> 0 then c else Attribute.Set.compare a b)
  in
  List.fold_left
    (fun minimal set ->
      if List.exists (fun smaller -> Attribute.Set.subset smaller set) minimal then
        minimal
      else if fixed_on r set then minimal @ [ set ]
      else minimal)
    [] candidates

let is_fixed_on_some r =
  let schema = Nfr.schema r in
  List.exists
    (fun attribute -> fixed_on r (Attribute.Set.singleton attribute))
    (Schema.attributes schema)
  ||
  (* A relation can be fixed on a combination without being fixed on
     any single attribute; fall back to the full search when small. *)
  if Schema.degree schema <= 12 then fixed_sets r <> [] else false

type region = {
  irreducible : bool;
  canonical : bool;
  fixed : bool;
}

let region r =
  let flat = Nfr.flatten r in
  let canonical =
    List.exists
      (fun (_, form) -> Nfr.equal form r)
      (Nest.all_canonical_forms flat)
  in
  {
    irreducible = Irreducible.is_irreducible r;
    canonical;
    fixed = is_fixed_on_some r;
  }
