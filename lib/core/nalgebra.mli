(** An algebra on NFRs (Jaeschke–Schek style, extended).

    The paper defers its data-manipulation language but argues NFRs
    shrink the search space for exactly these operations. Every
    operation here is specified against the expansion semantics:
    [flatten (op r) = op_flat (flatten r)]. Operations marked
    {e direct} work on NFR tuples without expanding; the rest go
    through a controlled re-nest and take an explicit application
    [order] for the result. *)

open Relational

val select_contains : Attribute.t -> Value.t -> Nfr.t -> Nfr.t
(** {e Direct.} NFR tuples whose component at the attribute contains
    the value — the paper's realization-view lookup. Note this is
    {e tuple selection}, not expansion selection: components keep
    their other values. *)

val select : Predicate.t -> order:Attribute.t list -> Nfr.t -> Nfr.t
(** Expansion-semantics selection, re-nested canonically with [order].
    Conjunctions of single-attribute comparisons are filtered
    componentwise (never expanding); correlated predicates fall back
    to per-tuple expansion. *)

val select_tuple : Schema.t -> Predicate.t -> Ntuple.t -> Ntuple.t list
(** Per-tuple selection kernel: the NFR tuples (zero or more) that one
    input tuple contributes to [select predicate]. Componentwise
    predicates shrink components in place (at most one output tuple);
    correlated predicates expand the tuple and keep matching facts.
    Streaming {!select} over a relation is [select_tuple] per tuple
    followed by one final {!Nest.canonicalize} — the physical
    executor's filter operator relies on exactly this decomposition.
    @raise Invalid_argument when the predicate does not validate
    against the schema. *)

val componentwise_selectable : Predicate.t -> bool
(** Would {!select} take the componentwise path (every top-level
    conjunct mentions at most one attribute)? Exposed for NFQL's
    EXPLAIN. *)

val project : Attribute.t list -> order:Attribute.t list -> Nfr.t -> Nfr.t
(** Expansion-semantics projection. Componentwise projection can make
    expansions overlap, so the result is re-nested canonically with
    [order] (a permutation of the {e projected} attributes). *)

val natural_join : Nfr.t -> Nfr.t -> Nfr.t
(** {e Direct.} Pairwise join: two NFR tuples join when their shared
    components intersect; the result tuple takes the intersection on
    shared attributes and the original components elsewhere. Preserves
    well-formedness and the expansion semantics
    [flatten (join a b) = join (flatten a) (flatten b)]. The result is
    not necessarily canonical. *)

val product : Nfr.t -> Nfr.t -> Nfr.t
(** {e Direct.} Cartesian product (disjoint schemas): component
    juxtaposition. *)

val union : order:Attribute.t list -> Nfr.t -> Nfr.t -> Nfr.t
(** Canonical form of [R* ∪ S*]. *)

val diff : order:Attribute.t list -> Nfr.t -> Nfr.t -> Nfr.t
(** Canonical form of [R* - S*]. *)

val rename : (Attribute.t * Attribute.t) list -> Nfr.t -> Nfr.t
(** {e Direct.} Schema rename, components untouched. *)

val semijoin : Nfr.t -> Nfr.t -> Nfr.t
(** {e Direct.} NFR tuples of the first argument whose shared
    components intersect some tuple of the second — tuple-level, like
    {!select_contains}. Expansion-exact when the shared attributes
    functionally cover the match (always a sound over-approximation of
    the flat semijoin; the flat-exact version is
    [diff ~order a (antijoin a b)] composed via {!union}). *)

val antijoin : Nfr.t -> Nfr.t -> Nfr.t
(** {e Direct.} Complement of {!semijoin} at tuple level. *)

val divide : order:Attribute.t list -> Nfr.t -> Nfr.t -> Nfr.t
(** Expansion-semantics relational division (via the flat algebra,
    re-nested canonically with [order] over the quotient schema). *)

val group_sizes : Nfr.t -> Attribute.t -> (Value.t * int) list
(** {e Direct.} For each value of the attribute, the number of flat
    facts whose expansion carries it — per-value cardinalities without
    materializing [R*]. Sorted by value. *)

val nest : Nfr.t -> Attribute.t -> Nfr.t
(** Re-export of {!Nest.nest} so NFQL sees one algebra module. *)

val unnest : Nfr.t -> Attribute.t -> Nfr.t
(** Re-export of {!Nest.unnest}. *)
