(** Insertion and deletion on canonical NFRs (Sec. 4 + Appendix).

    The update problem: maintain [R = V_P(R* ± t)] by operating on the
    NFR [R] directly, never on [R*], with a composition count that
    depends only on the degree [n] — not on the number of tuples
    (Theorem A-4). The procedures are the paper's:

    - [candt] finds the {e candidate tuple} [(s, m)] of [t]: [s] agrees
      with [t] (set-equality) on every attribute before position [m] of
      the nest order, componentwise contains [t] after [m], and is
      disjoint from [t] at [m]; [m] minimal. Lemma A-1 (uniqueness per
      [m]) is asserted.
    - [recons t] removes the candidate, unnests it down to [t]'s values
      on positions after [m] (recursing on each remainder), composes at
      [m], and recurses on the composed tuple. No candidate means [t]
      joins [R] as a new tuple.
    - [deletion] finds the containing tuple ([searcht]), peels [t] out
      position by position ([unnest] + [recons] on remainders), then
      drops the now-simple tuple ([deletet]).

    Orders here are {e application orders} (first attribute nested
    first) — see the note in {!Nest}. The paper fixes
    [P = En En-1 ... E1], i.e. application order [[E1; ...; En]]. *)

open Relational

(** Operation counters, so experiments can report the quantities
    Theorem A-4 is stated in. *)
type stats = {
  mutable compositions : int;  (** [ν] applications (the paper's measure) *)
  mutable decompositions : int;  (** targeted [μ] splits that produced a remainder *)
  mutable candidate_scans : int;  (** tuples examined across [candt] calls *)
  mutable recons_calls : int;
}

val fresh_stats : unit -> stats
val add_stats : stats -> stats -> unit
(** [add_stats acc s] accumulates [s] into [acc]. *)

exception Update_diverged of string
(** Raised when a single update exceeds its internal fuel — Theorem
    A-4 says this cannot happen; the exception keeps bugs loud. *)

exception Not_in_relation
(** Raised by {!delete} when the tuple is not in [R*]. *)

val insert : ?stats:stats -> order:Attribute.t list -> Nfr.t -> Tuple.t -> Nfr.t
(** [insert ~order r t] is the canonical form (w.r.t. [order]) of
    [R* ∪ {t}], computed incrementally. Returns [r] unchanged when [t]
    is already present.
    @raise Invalid_argument unless [order] is a permutation of the
    schema and [r] is canonical w.r.t. [order] is {e assumed} (not
    checked — property tests cover it). *)

val delete : ?stats:stats -> order:Attribute.t list -> Nfr.t -> Tuple.t -> Nfr.t
(** [delete ~order r t] is the canonical form of [R* - {t}].
    @raise Not_in_relation when [t] is absent. *)

val insert_all :
  ?stats:stats -> order:Attribute.t list -> Nfr.t -> Tuple.t list -> Nfr.t

val delete_all :
  ?stats:stats -> order:Attribute.t list -> Nfr.t -> Tuple.t list -> Nfr.t

val build : ?stats:stats -> order:Attribute.t list -> Relation.t -> Nfr.t
(** [build ~order flat] inserts every tuple of [flat] into the empty
    NFR — an all-incremental canonicalization, used to cross-check
    {!Nest.canonical}. *)

(** One physical effect of an update: an NFR tuple entered or left the
    relation. Journals list effects in application order. *)
type journal_entry =
  | Added of Ntuple.t
  | Removed of Ntuple.t

val lemma_a1_candidates :
  order:Attribute.t list -> Nfr.t -> Ntuple.t -> position:int -> Ntuple.t list
(** The tuples of [r] satisfying the candidate conditions for the probe
    at one nest position (0-based in application order). Lemma A-1
    asserts at most one exists on a canonical NFR for the {e minimal}
    such position; [candt] enforces that at runtime, and the test
    suite checks it directly through this function. *)

(** A mutable canonical store with an inverted {!Postings} index, so
    [candt] and [searcht] intersect posting lists instead of scanning
    the relation. Same algorithms, different physical representation —
    the "optimization strategy" the paper leaves open. The E10 ablation
    bench compares this against the scan-based functions above. *)
module Store : sig
  type t

  val create : ?unindexed:Attribute.t list -> order:Attribute.t list -> Schema.t -> t
  val of_nfr : ?unindexed:Attribute.t list -> order:Attribute.t list -> Nfr.t -> t
  (** @raise Invalid_argument unless [order] permutes the schema. The
      NFR is assumed canonical for [order]. [unindexed] names
      attributes the postings index skips (see {!Postings.create}) —
      right for a component that accumulates large sets, where
      per-value index maintenance would dominate every update; lookups
      on such attributes verify candidates directly instead. *)

  val snapshot : t -> Nfr.t
  (** The current canonical NFR (persistent value; cheap). *)

  val cardinality : t -> int
  val order : t -> Attribute.t list

  val member : t -> Tuple.t -> bool
  (** Indexed membership in [R*]. *)

  val find_containing : t -> Tuple.t -> Ntuple.t option
  (** Indexed [searcht]. *)

  val insert : ?stats:stats -> t -> Tuple.t -> bool
  (** [insert store t] — [false] when [t] was already present. *)

  val delete : ?stats:stats -> t -> Tuple.t -> unit
  (** @raise Not_in_relation when absent. *)

  val insert_journaled : ?stats:stats -> t -> Tuple.t -> journal_entry list
  (** Like {!insert} but returns, in application order, the NFR tuples
      the update removed and added — what a physical layer must do to
      mirror the change. Empty on duplicates. *)

  val delete_journaled : ?stats:stats -> t -> Tuple.t -> journal_entry list

  val apply_journal : t -> journal_entry list -> unit
  (** Replay journal entries against the store's NFR and index
      directly, without the Sec. 4 machinery. Only safe for entries
      known to restore a previously-held canonical state — i.e. an
      {!invert_journal}-ed journal during transaction undo. *)
end

val invert_journal : journal_entry list -> journal_entry list
(** The undo journal: reversed order, [Added]/[Removed] swapped.
    Applying it ({!Store.apply_journal}) restores the state from
    before the journal's update. *)
