(** Cardinality classes and fixedness (Defs. 6–7, Fig. 3).

    Definition 6 relates each attribute's values to the tuples holding
    them: does any value recur across tuples (the [:n] side), and does
    any value sit inside a compound component (the [m:]/[n:] side)?
    Definition 7's {e fixedness} is the paper's key notion: [R] is
    fixed on [F1..Fk] when no combination of [F]-values is contained
    in two distinct tuples. *)

open Relational

(** Definition 6's four classes for one attribute. *)
type cardinality =
  | One_to_one  (** every value: one tuple, singleton component *)
  | N_to_one  (** compound components, but no value in two tuples *)
  | One_to_n  (** values recur across tuples, always as singletons *)
  | M_to_n  (** compound components and recurring values *)

val cardinality_name : cardinality -> string
(** ["1:1"], ["n:1"], ["1:n"], ["m:n"]. *)

val classify : Nfr.t -> Attribute.t -> cardinality
(** [classify r a] is Definition 6's [a : R]. *)

val classify_all : Nfr.t -> (Attribute.t * cardinality) list

(** One attribute's Def. 6/7 statistics, computed in a single pass:
    class, number of distinct component values, the largest and mean
    number of tuples any one value occurs in, and Def. 7 fixedness on
    the singleton set — which coincides with the [:1] classes (no value
    in two tuples), so it costs nothing extra. *)
type profile = {
  p_class : cardinality;
  p_distinct : int;  (** distinct values across all components *)
  p_max_group : int;  (** most tuples any single value occurs in *)
  p_mean_group : float;  (** mean tuples per distinct value; 0 when empty *)
  p_fixed : bool;  (** {!fixed_on} the singleton [{a}] *)
}

val profile : Nfr.t -> Attribute.t -> profile
(** Agrees with {!classify} and with {!fixed_on} on the singleton set
    (property-tested). *)

val fixed_on : Nfr.t -> Attribute.Set.t -> bool
(** Definition 7: at most one tuple contains any given combination of
    values on the listed attributes — i.e. every pair of distinct
    tuples has disjoint components on some listed attribute.
    @raise Invalid_argument on the empty set. *)

val fixed_sets : Nfr.t -> Attribute.Set.t list
(** All minimal attribute sets on which [r] is fixed (antichain),
    smallest first. Exponential in the degree; guarded at degree 12. *)

val is_fixed_on_some : Nfr.t -> bool
(** Fixed on at least one single attribute set (cheap summary used by
    Fig. 3's classification report). *)

(** Fig. 3 region of one NFR with respect to a permutation universe:
    every canonical form is irreducible; fixed forms cut across. *)
type region = {
  irreducible : bool;
  canonical : bool;  (** canonical under {e some} permutation *)
  fixed : bool;  (** fixed on some non-empty attribute set *)
}

val region : Nfr.t -> region
(** Computes the Fig. 3 region. The [canonical] test compares against
    all [n!] canonical forms of the flattening (guarded by
    {!Relational.Schema.permutations}). *)
