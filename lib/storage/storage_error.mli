(** Typed storage failures.

    Every recovery-path failure in [lib/storage] — a corrupt frame, a
    truncated snapshot, an operation on a closed or degraded handle —
    raises {!Error} with a structured description instead of a bare
    [Failure] string, so callers can branch on the failure class
    (salvage vs. abort vs. read-only fallback) without parsing
    messages. *)

type t =
  | Corrupt of {
      context : string;  (** which decoder/layer detected it *)
      offset : int;  (** byte offset within the input being decoded *)
      detail : string;
    }
      (** The bytes do not parse or fail their integrity check. *)
  | Closed of string  (** Operation on a closed handle (the operation name). *)
  | Degraded of string
      (** The table is in read-only degraded mode (the reason recorded
          at the transition). *)

exception Error of t

val to_string : t -> string

val corrupt : context:string -> offset:int -> string -> 'a
(** [corrupt ~context ~offset detail] raises {!Error} with a
    {!constructor-Corrupt} payload. *)
