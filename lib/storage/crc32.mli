(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

    The durability layer's integrity check: unlike the 1-byte additive
    checksum the WAL shipped with originally, CRC-32 detects all
    single-bit errors, all double-bit errors within the frame, and any
    burst up to 32 bits — random debris passes with probability 2^-32
    rather than 1/256. Values are 32-bit, returned in an OCaml [int]
    (always non-negative). *)

val digest : string -> int
(** CRC-32 of a whole string. *)

val digest_bytes : bytes -> pos:int -> len:int -> int
(** CRC-32 of a slice, without copying.
    @raise Invalid_argument on an out-of-bounds slice. *)
