open Relational
open Nfr_core

type flat_store = {
  f_schema : Schema.t;
  f_heap : Heap.t;
  f_index : Index.t;
  f_payload : int;
}

type nfr_store = {
  n_schema : Schema.t;
  n_heap : Heap.t;
  n_index : Index.t;
  n_payload : int;
}

let encode_record encode x =
  let buffer = Buffer.create 64 in
  encode buffer x;
  Buffer.contents buffer

(* The record bytes pass through the "engine.load.record" failpoint on
   their way to the heap: a Bit_flip lands silently corrupted (and is
   caught as a typed error at decode time), a Drop_write vanishes, a
   Short_write/Crash dies mid-load. *)
let store_record heap record =
  match Failpoint.on_write "engine.load.record" record with
  | Failpoint.Full data -> Some (Heap.append heap data)
  | Failpoint.Dropped -> None
  | Failpoint.Partial prefix ->
    ignore (Heap.append heap prefix);
    raise (Failpoint.Crashed "engine.load.record")

let load_flat ?page_size r =
  let heap = Heap.create ?page_size () in
  let index = Index.create () in
  let payload = ref 0 in
  Relation.iter
    (fun tuple ->
      let record = encode_record Codec.encode_tuple tuple in
      match store_record heap record with
      | None -> ()
      | Some rid ->
        payload := !payload + String.length record;
        List.iteri
          (fun position value -> Index.add index ~position value rid)
          (Tuple.values tuple))
    r;
  { f_schema = Relation.schema r; f_heap = heap; f_index = index; f_payload = !payload }

let load_nfr ?page_size r =
  let heap = Heap.create ?page_size () in
  let index = Index.create () in
  let payload = ref 0 in
  Nfr.iter
    (fun nt ->
      let record = encode_record Codec.encode_ntuple nt in
      match store_record heap record with
      | None -> ()
      | Some rid ->
        payload := !payload + String.length record;
        List.iteri
          (fun position component ->
            Vset.fold (fun value () -> Index.add index ~position value rid) component ())
          (Ntuple.components nt))
    r;
  { n_schema = Nfr.schema r; n_heap = heap; n_index = index; n_payload = !payload }

type footprint = {
  records : int;
  pages : int;
  heap_bytes : int;
  payload_bytes : int;
  index_entries : int;
}

let flat_footprint store =
  {
    records = Heap.record_count store.f_heap;
    pages = Heap.page_count store.f_heap;
    heap_bytes = Heap.total_bytes store.f_heap;
    payload_bytes = store.f_payload;
    index_entries = Index.entry_count store.f_index;
  }

let nfr_footprint store =
  {
    records = Heap.record_count store.n_heap;
    pages = Heap.page_count store.n_heap;
    heap_bytes = Heap.total_bytes store.n_heap;
    payload_bytes = store.n_payload;
    index_entries = Index.entry_count store.n_index;
  }

let flat_scan_eq store ~stats attribute value =
  let position = Schema.position store.f_schema attribute in
  let matches = ref [] in
  Heap.scan store.f_heap ~stats (fun _rid record ->
      let tuple, _ = Codec.decode_tuple (Bytes.of_string record) 0 in
      if Value.equal (Tuple.get tuple position) value then
        matches := tuple :: !matches);
  List.rev !matches

let nfr_scan_contains store ~stats attribute value =
  let position = Schema.position store.n_schema attribute in
  let matches = ref [] in
  Heap.scan store.n_heap ~stats (fun _rid record ->
      let nt, _ = Codec.decode_ntuple (Bytes.of_string record) 0 in
      if Vset.mem value (Ntuple.component nt position) then matches := nt :: !matches);
  List.rev !matches

let flat_lookup_eq store ~stats attribute value =
  let position = Schema.position store.f_schema attribute in
  let rids = Index.lookup store.f_index ~stats ~position value in
  List.map
    (fun rid ->
      let record = Heap.fetch store.f_heap ~stats rid in
      fst (Codec.decode_tuple (Bytes.of_string record) 0))
    rids

let nfr_lookup_contains store ~stats attribute value =
  let position = Schema.position store.n_schema attribute in
  let rids = Index.lookup store.n_index ~stats ~position value in
  List.map
    (fun rid ->
      let record = Heap.fetch store.n_heap ~stats rid in
      fst (Codec.decode_ntuple (Bytes.of_string record) 0))
    rids

let flat_schema store = store.f_schema
let nfr_schema store = store.n_schema
