open Relational
open Nfr_core

let encode_varint buffer n =
  if n < 0 then invalid_arg "Codec.encode_varint: negative";
  let rec loop n =
    if n < 0x80 then Buffer.add_char buffer (Char.chr n)
    else begin
      Buffer.add_char buffer (Char.chr (0x80 lor (n land 0x7F)));
      loop (n lsr 7)
    end
  in
  loop n

let decode_varint bytes offset =
  let rec loop offset shift acc =
    if offset >= Bytes.length bytes then
      Storage_error.corrupt ~context:"Codec.decode_varint" ~offset "truncated varint";
    (* 9 * 7 = 63 bits fills the OCaml int; a longer varint is garbage
       and would otherwise shift into the sign bit and yield a negative
       length that downstream allocations would choke on. *)
    if shift > 56 then
      Storage_error.corrupt ~context:"Codec.decode_varint" ~offset "varint overflow";
    let byte = Char.code (Bytes.get bytes offset) in
    let acc = acc lor ((byte land 0x7F) lsl shift) in
    if byte land 0x80 = 0 then (acc, offset + 1) else loop (offset + 1) (shift + 7) acc
  in
  loop offset 0 0

(* Sanity bound for decoded counts: every encoded element occupies at
   least one byte, so a count exceeding the bytes left is corruption —
   rejecting it here keeps [Array.make] from attempting a giant (or,
   post-overflow, negative) allocation on flipped input. *)
let check_count ~context bytes offset count =
  if count < 0 || count > Bytes.length bytes - offset then
    Storage_error.corrupt ~context ~offset
      (Printf.sprintf "element count %d exceeds %d remaining bytes" count
         (Bytes.length bytes - offset))

(* Value tags. *)
let tag_int = 0
let tag_float = 1
let tag_string = 2
let tag_true = 3
let tag_false = 4
let tag_negative_int = 5

let encode_value buffer = function
  | Value.Vint i ->
    if i >= 0 then begin
      encode_varint buffer tag_int;
      encode_varint buffer i
    end
    else begin
      encode_varint buffer tag_negative_int;
      encode_varint buffer (-(i + 1))
    end
  | Value.Vfloat f ->
    encode_varint buffer tag_float;
    let bits = Int64.bits_of_float f in
    for shift = 0 to 7 do
      Buffer.add_char buffer
        (Char.chr
           (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (shift * 8)) 0xFFL)))
    done
  | Value.Vstring s ->
    encode_varint buffer tag_string;
    encode_varint buffer (String.length s);
    Buffer.add_string buffer s
  | Value.Vbool true -> encode_varint buffer tag_true
  | Value.Vbool false -> encode_varint buffer tag_false

let decode_value bytes offset =
  let tag, offset = decode_varint bytes offset in
  if tag = tag_int then begin
    let i, offset = decode_varint bytes offset in
    (Value.of_int i, offset)
  end
  else if tag = tag_negative_int then begin
    let i, offset = decode_varint bytes offset in
    (Value.of_int (-i - 1), offset)
  end
  else if tag = tag_float then begin
    if offset + 8 > Bytes.length bytes then
      Storage_error.corrupt ~context:"Codec.decode_value" ~offset "truncated float";
    let bits = ref 0L in
    for shift = 7 downto 0 do
      bits :=
        Int64.logor
          (Int64.shift_left !bits 8)
          (Int64.of_int (Char.code (Bytes.get bytes (offset + shift))))
    done;
    (Value.of_float (Int64.float_of_bits !bits), offset + 8)
  end
  else if tag = tag_string then begin
    let length, offset = decode_varint bytes offset in
    if length < 0 || offset + length > Bytes.length bytes then
      Storage_error.corrupt ~context:"Codec.decode_value" ~offset "truncated string";
    (Value.of_string (Bytes.sub_string bytes offset length), offset + length)
  end
  else if tag = tag_true then (Value.of_bool true, offset)
  else if tag = tag_false then (Value.of_bool false, offset)
  else
    Storage_error.corrupt ~context:"Codec.decode_value" ~offset
      (Printf.sprintf "unknown tag %d" tag)

let encode_tuple buffer tuple =
  encode_varint buffer (Tuple.arity tuple);
  List.iter (encode_value buffer) (Tuple.values tuple)

let decode_tuple bytes offset =
  let arity, offset = decode_varint bytes offset in
  check_count ~context:"Codec.decode_tuple" bytes offset arity;
  let values = Array.make arity (Value.of_int 0) in
  let offset = ref offset in
  for i = 0 to arity - 1 do
    let value, next = decode_value bytes !offset in
    values.(i) <- value;
    offset := next
  done;
  (Tuple.of_array_unchecked values, !offset)

let encode_ntuple buffer nt =
  encode_varint buffer (Ntuple.arity nt);
  List.iter
    (fun component ->
      encode_varint buffer (Vset.cardinal component);
      List.iter (encode_value buffer) (Vset.elements component))
    (Ntuple.components nt)

let decode_ntuple bytes offset =
  let arity, offset = decode_varint bytes offset in
  check_count ~context:"Codec.decode_ntuple" bytes offset arity;
  let components = Array.make arity (Vset.singleton (Value.of_int 0)) in
  let offset = ref offset in
  for i = 0 to arity - 1 do
    let cardinal, next = decode_varint bytes !offset in
    check_count ~context:"Codec.decode_ntuple" bytes next cardinal;
    offset := next;
    let values = ref [] in
    for _ = 1 to cardinal do
      let value, next = decode_value bytes !offset in
      values := value :: !values;
      offset := next
    done;
    components.(i) <- Vset.of_list !values
  done;
  (Ntuple.of_sets_unchecked components, !offset)

let measure encode x =
  let buffer = Buffer.create 64 in
  encode buffer x;
  Buffer.length buffer

let tuple_size tuple = measure encode_tuple tuple
let ntuple_size nt = measure encode_ntuple nt

let relation_size r =
  Relation.fold (fun tuple acc -> acc + tuple_size tuple) r 0

let nfr_size r = Nfr.fold (fun nt acc -> acc + ntuple_size nt) r 0
