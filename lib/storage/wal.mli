(** A logical write-ahead log.

    Records the {e user-level} operations (insert/delete of one flat
    tuple) rather than physical effects, so recovery is replaying the
    Sec. 4 algorithms — which is exactly what makes logical logging
    cheap for NFRs: entries are tuple-sized no matter how large the
    touched groups were.

    {2 On-disk format}

    v1 files start with a header (magic ["NF2WALv1"] + a varint
    {e generation}) and hold frames of [0xA7 marker, varint length,
    payload, CRC-32]. The generation increments on every truncation
    ({!reset}/{!truncate}); {!Table.save_snapshot} records it, which
    is how recovery distinguishes a fresh post-checkpoint log from a
    stale pre-checkpoint one. The legacy v0 format (no header, 1-byte
    additive checksum) is still replayed transparently, and
    {!open_log} keeps appending v0 frames to a v0 file so a single
    log never mixes formats.

    {2 Durability contract}

    {!append} is {e buffered}: the frame reaches the OS page cache
    (a stdlib flush), which survives process death but not power
    loss. {!sync} is the durability barrier — a real [Unix.fsync] —
    and is what an acknowledgement must wait for. The split is what
    makes group commit possible: many appends, one [fsync].

    Appends and syncs are threaded through {!Failpoint} sites
    (["wal.append.before"], ["wal.append.frame"],
    ["wal.append.after"], ["wal.sync.before"], ["wal.sync.after"],
    ["wal.reset"]), so the crash matrix can inject torn writes, bit
    flips, lost flushes, power cuts that drop unsynced bytes, and
    crashes at every step and verify recovery. *)

open Relational

type entry =
  | Insert of Tuple.t  (** autocommit insert (legacy tag; replays as its own txn) *)
  | Delete of Tuple.t  (** autocommit delete *)
  | Txn_begin of int  (** open transaction [txid] *)
  | Txn_insert of int * Tuple.t  (** insert within transaction [txid] *)
  | Txn_delete of int * Tuple.t  (** delete within transaction [txid] *)
  | Txn_commit of int  (** transaction [txid] committed — its ops are durable *)
  | Txn_abort of int  (** transaction [txid] rolled back — discard its ops *)
  | View_def of { view : string; base : string; by : string list }
      (** view-catalog record: [view] materializes [base] nested by
          the named partition attributes. Lives in the views catalog
          log, never in a table log; view {e contents} are not logged —
          recovery rematerializes by renesting the recovered base. *)
  | View_drop of string  (** view-catalog record: the view was dropped *)
  | Manifest_commit of { txid : int; tables : (string * int) list }
      (** global-commit-manifest record: transaction [txid] committed
          across [tables], claiming the paired commit sequence in each.
          Lives only in the [_commit.wal] manifest log; a per-table
          [Txn_commit] is {e provisional} until the manifest record
          that names it is synced. *)

type format = V0  (** legacy: unframed, 1-byte additive checksum *)
            | V1  (** current: header + marker/CRC-32 frames *)

type t
(** An open log handle (append mode). *)

val open_log : string -> t
(** Opens (creating if absent) for appending. A fresh file gets a v1
    header at generation 1; an existing v0 file stays v0. A torn final
    frame (crash debris) is trimmed back to the last frame boundary so
    new appends never land mid-log behind it. *)

val generation : t -> int
(** The log's current generation (0 for legacy v0 files). *)

val append : t -> entry -> unit
(** Encode, frame, write, flush to the OS page cache. {b Not} durable
    against power loss until a following {!sync} covers it.
    @raise Storage_error.Error [(Closed _)] after {!close}.
    @raise Failpoint.Crashed when an armed fault fires at one of the
    append sites (simulated process death — the handle is unusable). *)

val sync : t -> unit
(** The durability barrier: flush then [Unix.fsync]. Every byte
    appended before the call is on the platter when it returns; a
    no-op when nothing new was appended since the last sync.
    @raise Storage_error.Error [(Closed _)] after {!close}.
    @raise Failpoint.Crashed when an armed fault fires at a
    ["wal.sync.*"] site ({!Failpoint.Lose_unsynced} additionally
    truncates the file back to the durable watermark first —
    simulated power loss). *)

val unsynced_bytes : t -> int
(** Bytes appended since the last {!sync} (0 when fully durable) —
    what a group-commit scheduler polls to find dirty logs. *)

val close : t -> unit
(** Flush, fsync (best effort), and close the handle. *)

val encode_entry : entry -> string
(** The frame payload for one entry — the same bytes {!append} frames.
    Exposed so replication can ship entries over the wire protocol in
    the exact on-disk encoding. *)

val decode_entry : string -> entry
(** Inverse of {!encode_entry}.
    @raise Storage_error.Error on a truncated or unknown payload. *)

val replay : string -> entry list
(** All complete entries in write order; the empty list when the file
    does not exist. Silently drops a trailing partial/corrupt entry
    (crash semantics), but
    @raise Storage_error.Error when corruption is followed by a later
    valid frame (torn middle — a real error). Use {!replay_salvage}
    to recover around mid-log damage instead. *)

(** The structured result of a salvage scan. *)
type salvage = {
  entries : entry list;  (** every decodable entry, in write order *)
  format : format;
  generation : int;  (** 0 for v0 or when the header is unreadable *)
  scanned_bytes : int;  (** file size *)
  bytes_skipped : int;  (** mid-log debris skipped over *)
  first_bad_offset : int option;
      (** first offset at which frame parsing failed, including a torn
          tail; [None] iff the file parsed cleanly end to end *)
  torn_tail_bytes : int;
      (** trailing bytes dropped as crash debris (no later valid frame) *)
}

val replay_salvage : string -> salvage
(** Scan-ahead salvage: never raises on corrupt input. On a bad frame
    it scans forward for the next structurally valid, CRC-checked
    frame, counts the skipped bytes, and carries on; trailing debris
    is reported as a torn tail. A missing file yields an empty clean
    report. *)

val reset : string -> unit
(** Truncate the log to an empty v1 file at the next generation
    (after a checkpoint). Safe to call on a path whose handle is
    still open {e only} for v1 handles — the open handle appends in
    v1 framing past the rewritten header. For a handle-aware
    truncation (and the only correct way to reset a v0-format
    handle), use {!truncate}. *)

val truncate : t -> unit
(** Truncate through the handle: bumps the generation, rewrites the
    header, and re-points the handle (upgrading a v0 handle to v1).
    @raise Storage_error.Error [(Closed _)] after {!close}. *)
