(** Heap files: an append-only sequence of slotted pages.

    Scans report how many pages and records they touched via
    {!Stats}; that count is the paper's "logical search space". *)

type t

type rid = {
  page_no : int;
  slot : int;
}
(** Record identifier. *)

val create : ?page_size:int -> ?pool_capacity:int -> unit -> t
(** Every heap fronts its page access with a {!Bufpool} of
    [pool_capacity] pages (default {!Bufpool.default_capacity}). *)

val pool : t -> Bufpool.t
(** The heap's buffer pool. Each page charged to {!Stats} is exactly
    one pool touch, so hits + misses always equals [pages_read]. *)

val append : t -> string -> rid
(** Store a record, opening a new page when the current one is full.
    @raise Invalid_argument if the record exceeds a whole page. *)

val get : t -> rid -> string
(** @raise Invalid_argument on a dangling rid. *)

val page_count : t -> int
val record_count : t -> int
val total_bytes : t -> int
(** Sum of page sizes (allocated), not just payload. *)

val scan : t -> stats:Stats.t -> (rid -> string -> unit) -> unit
(** Full scan; charges every page and record to [stats]. *)

val fetch : t -> stats:Stats.t -> rid -> string
(** Point read; charges one page and one record. *)

val cursor : t -> stats:Stats.t -> unit -> (rid * string) option
(** Pull-based full scan: same visit order and the same per-page /
    per-record charging as {!scan}, but one record per call, so a
    consumer that stops early only pays for what it pulled. Records
    appended after the cursor was created are visited if the cursor
    has not passed their page yet. *)
