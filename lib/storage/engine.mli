(** The realization view: relations materialized on pages.

    Loads a 1NF relation or an NFR into a heap file with one inverted
    index per attribute, and answers the two access paths the E9
    bench compares — full scans and indexed point lookups — charging
    every touched page/record/probe to a {!Stats.t}. The same flat
    information stored both ways is the paper's Sec. 5 claim made
    concrete: the NFR heap has fewer records, fewer pages, and
    proportionally cheaper scans. *)

open Relational
open Nfr_core

type flat_store
type nfr_store

val load_flat : ?page_size:int -> Relation.t -> flat_store
val load_nfr : ?page_size:int -> Nfr.t -> nfr_store
(** Both loaders thread every record through the
    ["engine.load.record"] {!Failpoint} site, so tests can inject
    torn, flipped or lost records; a record corrupted in the heap
    surfaces later as {!Storage_error.Error} from the decoding scan
    and lookup paths below. *)

(** Physical footprint of a store. *)
type footprint = {
  records : int;
  pages : int;
  heap_bytes : int;  (** allocated page bytes *)
  payload_bytes : int;  (** encoded record bytes *)
  index_entries : int;
}

val flat_footprint : flat_store -> footprint
val nfr_footprint : nfr_store -> footprint

val flat_scan_eq :
  flat_store -> stats:Stats.t -> Attribute.t -> Value.t -> Tuple.t list
(** Unindexed: full scan keeping tuples whose field equals the value. *)

val nfr_scan_contains :
  nfr_store -> stats:Stats.t -> Attribute.t -> Value.t -> Ntuple.t list
(** Unindexed: full scan keeping ntuples whose component contains the
    value. *)

val flat_lookup_eq :
  flat_store -> stats:Stats.t -> Attribute.t -> Value.t -> Tuple.t list
(** Indexed point lookup. *)

val nfr_lookup_contains :
  nfr_store -> stats:Stats.t -> Attribute.t -> Value.t -> Ntuple.t list

val flat_schema : flat_store -> Schema.t
val nfr_schema : nfr_store -> Schema.t
