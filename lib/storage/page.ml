(* A page is a byte buffer plus a slot directory. Records are
   appended front-to-back; the directory (offset, length per slot) is
   tracked out-of-band but its size is charged against the page budget
   (4 bytes per slot), mimicking an on-disk slotted layout.

   The directory is a growable array indexed by slot number, so
   [get] is O(1); the previous newest-first list made every lookup
   O(slots) and full-page scans O(slots^2). *)

type t = {
  buffer : Buffer.t;
  mutable offsets : int array;  (* offsets.(slot), lengths.(slot) *)
  mutable lengths : int array;
  mutable count : int;  (* live slots; arrays may be longer *)
  page_size : int;
}

let default_size = 4096
let slot_overhead = 4
let header_overhead = 8
let initial_slots = 8

let create ?(size = default_size) () =
  {
    buffer = Buffer.create size;
    offsets = Array.make initial_slots 0;
    lengths = Array.make initial_slots 0;
    count = 0;
    page_size = size;
  }

let record_count page = page.count

let used_bytes page =
  Buffer.length page.buffer
  + (page.count * slot_overhead)
  + header_overhead

let capacity_left page = page.page_size - used_bytes page - slot_overhead
let size page = page.page_size

let grow_directory page =
  let capacity = Array.length page.offsets in
  if page.count >= capacity then begin
    let bigger = max initial_slots (2 * capacity) in
    let offsets = Array.make bigger 0 in
    let lengths = Array.make bigger 0 in
    Array.blit page.offsets 0 offsets 0 page.count;
    Array.blit page.lengths 0 lengths 0 page.count;
    page.offsets <- offsets;
    page.lengths <- lengths
  end

let append page record =
  if String.length record > capacity_left page then None
  else begin
    let offset = Buffer.length page.buffer in
    Buffer.add_string page.buffer record;
    grow_directory page;
    page.offsets.(page.count) <- offset;
    page.lengths.(page.count) <- String.length record;
    page.count <- page.count + 1;
    Some (page.count - 1)
  end

let get page slot =
  if slot < 0 || slot >= page.count then
    invalid_arg (Printf.sprintf "Page.get: slot %d of %d" slot page.count);
  Buffer.sub page.buffer page.offsets.(slot) page.lengths.(slot)

let iter f page =
  for slot = 0 to page.count - 1 do
    f slot (get page slot)
  done
