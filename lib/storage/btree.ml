open Relational

type leaf = {
  mutable items : (Value.t * Heap.rid list) list;  (* sorted by key *)
  mutable next : leaf option;
}

type node =
  | Leaf of leaf
  | Interior of interior

and interior = {
  mutable seps : Value.t list;  (* k separators *)
  mutable children : node list;  (* k + 1 children *)
}

type t = {
  mutable root : node;
  fanout : int;
}

let create ?(fanout = 16) () =
  let fanout = max 4 fanout in
  { root = Leaf { items = []; next = None }; fanout }

(* Child index for a key: first separator strictly greater than the
   key selects its child; keys equal to a separator go right. *)
let child_index seps key =
  let rec loop i = function
    | [] -> i
    | sep :: rest -> if Value.compare key sep < 0 then i else loop (i + 1) rest
  in
  loop 0 seps

let rec nth_child children i =
  match children, i with
  | child :: _, 0 -> child
  | _ :: rest, i -> nth_child rest (i - 1)
  | [], _ -> invalid_arg "Btree: bad child index"

let split_list items =
  let n = List.length items in
  let rec take k = function
    | rest when k = 0 -> ([], rest)
    | [] -> ([], [])
    | head :: tail ->
      let left, right = take (k - 1) tail in
      (head :: left, right)
  in
  take (n / 2) items

(* Insert into a node; on overflow return (separator, right sibling). *)
let rec insert_node fanout node key rid =
  match node with
  | Leaf leaf ->
    let rec place = function
      | [] -> [ (key, [ rid ]) ]
      | ((existing, postings) as entry) :: rest ->
        let c = Value.compare key existing in
        if c = 0 then (existing, rid :: postings) :: rest
        else if c < 0 then (key, [ rid ]) :: entry :: rest
        else entry :: place rest
    in
    leaf.items <- place leaf.items;
    if List.length leaf.items <= fanout then None
    else begin
      let left_items, right_items = split_list leaf.items in
      let right = { items = right_items; next = leaf.next } in
      leaf.items <- left_items;
      leaf.next <- Some right;
      match right_items with
      | (sep, _) :: _ -> Some (sep, Leaf right)
      | [] -> None
    end
  | Interior interior -> (
    let index = child_index interior.seps key in
    let child = nth_child interior.children index in
    match insert_node fanout child key rid with
    | None -> None
    | Some (sep, right) ->
      (* Splice sep and right after position index. *)
      let rec splice i seps children =
        match seps, children with
        | seps, child :: rest when i = 0 ->
          (sep :: seps, child :: right :: rest)
        | s :: seps, child :: children ->
          let seps', children' = splice (i - 1) seps children in
          (s :: seps', child :: children')
        | [], [ child ] -> (* index points at the last child *)
          ([ sep ], [ child; right ])
        | _ -> invalid_arg "Btree: malformed interior"
      in
      let seps', children' = splice index interior.seps interior.children in
      interior.seps <- seps';
      interior.children <- children';
      if List.length interior.children <= fanout then None
      else begin
        (* Split the interior: middle separator moves up. *)
        let k = List.length interior.seps / 2 in
        let rec cut i seps children =
          match seps, children with
          | sep :: seps_rest, child :: children_rest when i = 0 ->
            (([], [ child ]), sep, (seps_rest, children_rest))
          | sep :: seps_rest, child :: children_rest ->
            let (ls, lc), mid, (rs, rc) = cut (i - 1) seps_rest children_rest in
            ((sep :: ls, child :: lc), mid, (rs, rc))
          | _ -> invalid_arg "Btree: malformed interior split"
        in
        let (left_seps, left_children), mid, (right_seps, right_children) =
          cut k interior.seps interior.children
        in
        interior.seps <- left_seps;
        interior.children <- left_children;
        Some (mid, Interior { seps = right_seps; children = right_children })
      end)

let insert t key rid =
  match insert_node t.fanout t.root key rid with
  | None -> ()
  | Some (sep, right) ->
    t.root <- Interior { seps = [ sep ]; children = [ t.root; right ] }

let rec find_leaf node key =
  match node with
  | Leaf leaf -> leaf
  | Interior interior ->
    find_leaf (nth_child interior.children (child_index interior.seps key)) key

let remove t key rid =
  let leaf = find_leaf t.root key in
  leaf.items <-
    List.filter_map
      (fun (existing, postings) ->
        if Value.equal existing key then begin
          match List.filter (fun r -> r <> rid) postings with
          | [] -> None
          | remaining -> Some (existing, remaining)
        end
        else Some (existing, postings))
      leaf.items

let lookup t ~stats key =
  stats.Stats.index_probes <- stats.Stats.index_probes + 1;
  let leaf = find_leaf t.root key in
  match List.find_opt (fun (existing, _) -> Value.equal existing key) leaf.items with
  | Some (_, postings) -> List.rev postings
  | None -> []

let leftmost t =
  let rec descend = function
    | Leaf leaf -> leaf
    | Interior { children = child :: _; _ } -> descend child
    | Interior { children = []; _ } -> invalid_arg "Btree: empty interior"
  in
  descend t.root

let range_open t ~stats ?lo ?hi ?(lo_incl = true) ?(hi_incl = true) () =
  let start =
    match lo with
    | Some lo -> find_leaf t.root lo
    | None -> leftmost t
  in
  (* Exclusive bounds cut the boundary key itself, so its posting list
     is never returned — the caller pays no heap fetches for a group a
     strict comparison would discard anyway. *)
  let below_lo key =
    match lo with
    | Some lo ->
      let c = Value.compare key lo in
      if lo_incl then c < 0 else c <= 0
    | None -> false
  in
  let above_hi key =
    match hi with
    | Some hi ->
      let c = Value.compare key hi in
      if hi_incl then c > 0 else c >= 0
    | None -> false
  in
  let rec walk leaf acc =
    stats.Stats.index_probes <- stats.Stats.index_probes + 1;
    let in_range, past =
      List.fold_left
        (fun (acc, past) (key, postings) ->
          if below_lo key then (acc, past)
          else if above_hi key then (acc, true)
          else ((key, List.rev postings) :: acc, past))
        (acc, false) leaf.items
    in
    if past then in_range
    else
      match leaf.next with
      | Some next -> walk next in_range
      | None -> in_range
  in
  List.rev (walk start [])

let range t ~stats ~lo ~hi = range_open t ~stats ~lo ~hi ()

let keys t =
  let rec walk leaf acc =
    let acc = List.fold_left (fun acc (key, _) -> key :: acc) acc leaf.items in
    match leaf.next with Some next -> walk next acc | None -> List.rev acc
  in
  walk (leftmost t) []

let cardinal t = List.length (keys t)

let depth t =
  let rec descend node acc =
    match node with
    | Leaf _ -> acc
    | Interior { children = child :: _; _ } -> descend child (acc + 1)
    | Interior { children = []; _ } -> acc
  in
  descend t.root 1

let rec node_keys = function
  | Leaf leaf -> List.map fst leaf.items
  | Interior interior -> List.concat_map node_keys interior.children

let rec node_ok fanout = function
  | Leaf leaf ->
    let ks = List.map fst leaf.items in
    List.sort Value.compare ks = ks
    && List.length (List.sort_uniq Value.compare ks) = List.length ks
  | Interior interior ->
    List.length interior.children = List.length interior.seps + 1
    && List.length interior.children <= fanout
    && List.for_all (node_ok fanout) interior.children
    &&
    (* Separator discipline: child i's keys < seps[i] <= child i+1's. *)
    let rec seps_ok seps children =
      match seps, children with
      | [], [ _ ] -> true
      | sep :: seps_rest, left :: (right :: _ as children_rest) ->
        List.for_all (fun k -> Value.compare k sep < 0) (node_keys left)
        && List.for_all (fun k -> Value.compare k sep >= 0) (node_keys right)
        && seps_ok seps_rest children_rest
      | _ -> false
    in
    seps_ok interior.seps interior.children

let check_invariants t =
  node_ok t.fanout t.root
  &&
  (* The leaf chain enumerates exactly the in-order keys, sorted. *)
  let chained = keys t in
  let in_order = node_keys t.root in
  chained = in_order
  && List.sort Value.compare chained = chained
