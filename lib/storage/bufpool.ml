(* A fixed-capacity buffer pool fronting heap page access.

   The heap's pages live in memory either way; what the pool models is
   which of them would be resident in a bounded cache, so the planner
   can price a re-probe of a hot page below a cold read. Admission is
   on first touch, replacement is strict LRU (doubly-linked recency
   list + hashtable, O(1) per operation), and sequential scans
   prefetch the next page so a scan's successor touches hit.

   Counters are kept per pool and mirrored into the global registry
   ([pool.hit] / [pool.miss] / [pool.evict]) for scraping. *)

type node = {
  page_no : int;
  mutable prev : node option;  (* toward the MRU end *)
  mutable next : node option;  (* toward the LRU end *)
}

type t = {
  cap : int;
  table : (int, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_capacity = 64

let create ?(capacity = default_capacity) () =
  let cap = max 1 capacity in
  {
    cap;
    table = Hashtbl.create (2 * cap);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let contains t page_no = Hashtbl.mem t.table page_no

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_mru t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> ());
  t.mru <- Some node;
  if t.lru = None then t.lru <- Some node

let evict_lru t =
  match t.lru with
  | None -> ()
  | Some victim ->
    unlink t victim;
    Hashtbl.remove t.table victim.page_no;
    t.evictions <- t.evictions + 1;
    Obs.Registry.incr Obs.Registry.global "pool.evict"

(* Admit [page_no] without touching the hit/miss ledger. *)
let admit t page_no =
  if not (Hashtbl.mem t.table page_no) then begin
    if Hashtbl.length t.table >= t.cap then evict_lru t;
    let node = { page_no; prev = None; next = None } in
    Hashtbl.replace t.table page_no node;
    push_mru t node
  end

let touch t page_no =
  match Hashtbl.find_opt t.table page_no with
  | Some node ->
    unlink t node;
    push_mru t node;
    t.hits <- t.hits + 1;
    Obs.Registry.incr Obs.Registry.global "pool.hit";
    true
  | None ->
    t.misses <- t.misses + 1;
    Obs.Registry.incr Obs.Registry.global "pool.miss";
    admit t page_no;
    false

let prefetch t page_no = admit t page_no

let clear t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None

(* LRU -> MRU order, for the byte-equality property test. *)
let cached_pages t =
  let rec walk acc = function
    | None -> acc
    | Some node -> walk (node.page_no :: acc) node.next
  in
  walk [] t.mru
