(* The global commit manifest: one [Wal.Manifest_commit] record per
   durable transaction, in commit order, in its own v1-framed log
   (conventionally [_commit.wal]). The per-table WALs hold the ops and
   a provisional Txn_commit; this log is the single commit point for
   multi-table transactions. Durability order at a commit is always
   table WALs first, manifest last: a crash before the manifest sync
   loses the manifest record and recovery rolls the transaction back
   in every participating table (all-or-nothing); a crash after it
   loses nothing. *)

type t = {
  wal : Wal.t;
  records : (int, (string * int) list) Hashtbl.t;  (* txid -> tables *)
  mutable order : (int * (string * int) list) list;  (* newest first *)
  mutable max_txid : int;
}

let remember t ~txid ~tables =
  Hashtbl.replace t.records txid tables;
  t.order <- (txid, tables) :: t.order;
  if txid > t.max_txid then t.max_txid <- txid

let open_log path =
  (* Torn-tail salvage first: record what survives, then let
     [Wal.open_log] trim the debris so appends land on a frame
     boundary. Mid-log damage in a manifest is damage to the commit
     history itself — surviving frames are still honoured (each one
     names a transaction whose tables all committed), and the skipped
     bytes surface through the per-table recovery reports when the
     affected transactions get rolled back. *)
  let salvage = Wal.replay_salvage path in
  let t =
    {
      wal = Wal.open_log path;
      records = Hashtbl.create 64;
      order = [];
      max_txid = 0;
    }
  in
  List.iter
    (function
      | Wal.Manifest_commit { txid; tables } -> remember t ~txid ~tables
      | _ ->
        (* A foreign record (debris decoding as a table entry) carries
           no commit authority; ignore it. *)
        ())
    salvage.Wal.entries;
  t

let append t ~txid ~tables =
  Failpoint.hit "manifest.append.before";
  Wal.append t.wal (Wal.Manifest_commit { txid; tables });
  remember t ~txid ~tables

let sync t = Wal.sync t.wal
let unsynced_bytes t = Wal.unsynced_bytes t.wal
let close t = Wal.close t.wal

let truncate t =
  Wal.truncate t.wal;
  Hashtbl.reset t.records;
  t.order <- []

let durable t txid = Hashtbl.mem t.records txid
let tables_of t txid = Hashtbl.find_opt t.records txid
let max_txid t = t.max_txid
let records t = List.rev t.order
