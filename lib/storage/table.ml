open Relational
open Nfr_core

module Ntuple_table = Hashtbl.Make (struct
  type t = Ntuple.t

  let equal = Ntuple.equal
  let hash = Ntuple.hash
end)

module Rid_set = Set.Make (struct
  type t = Heap.rid

  let compare = Stdlib.compare
end)

module Tuple_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* The first-committer-wins ledger: committed flat tuples indexed by
   tuple, each bucket holding the commit sequences that wrote it
   (newest first). Indexing by tuple makes [modified_since] one probe
   instead of a scan over every committed write since the last prune;
   [entries] counts (tuple, seq) pairs so [ledger_size] is O(1). *)
type ledger = {
  writes : int list ref Tuple_table.t;
  mutable entries : int;
}

type health =
  | Healthy
  | Degraded of string

(* An open storage-level transaction: the WAL has seen Txn_begin (and
   zero or more Txn_insert/Txn_delete), the in-memory layers hold the
   applied ops, and [undo] can put everything back if the commit
   record never lands. *)
type txn_state = {
  txid : int;
  mutable undo : Update.journal_entry list;  (* application order *)
  mutable written : Tuple.t list;  (* flat tuples touched, newest first *)
}

type t = {
  schema : Schema.t;
  order : Attribute.t list;
  store : Update.Store.t;
  page_size : int;
  mutable heap : Heap.t;
  mutable index : Index.t;
  mutable rids : Heap.rid Ntuple_table.t;  (* live ntuple -> rid *)
  mutable versions : int Ntuple_table.t;  (* live ntuple -> commit seq *)
  mutable dead : Rid_set.t;
  ordered_on : int option;  (* schema position of the B+-tree key *)
  mutable btree : Btree.t option;
  wal : Wal.t option;
  wal_path : string option;
  sync_on_commit : bool;
  mutable health : health;
  mutable commit_seq : int;  (* commits applied to this instance *)
  ledger : ledger;  (* committed writes since the last prune *)
  mutable txn : txn_state option;
}

let encode_record nt =
  let buffer = Buffer.create 64 in
  Codec.encode_ntuple buffer nt;
  Buffer.contents buffer

let ordered_values t nt =
  match t.ordered_on with
  | None -> Vset.singleton (Value.of_int 0) (* unused *)
  | Some position -> Ntuple.component nt position

let physical_add t nt =
  Obs.Registry.add_gauge Obs.Registry.global "storage.live_tuples" 1.;
  let rid = Heap.append t.heap (encode_record nt) in
  Ntuple_table.replace t.rids nt rid;
  (* Stamp the image with the sequence its op will commit at; the
     bump happens when the commit (or autocommit op) completes. *)
  Ntuple_table.replace t.versions nt (t.commit_seq + 1);
  List.iteri
    (fun position component ->
      Vset.fold (fun value () -> Index.add t.index ~position value rid) component ())
    (Ntuple.components nt);
  match t.btree with
  | Some tree ->
    Vset.fold (fun value () -> Btree.insert tree value rid) (ordered_values t nt) ()
  | None -> ()

let physical_remove t nt =
  match Ntuple_table.find_opt t.rids nt with
  | Some rid ->
    Obs.Registry.add_gauge Obs.Registry.global "storage.live_tuples" (-1.);
    Ntuple_table.remove t.rids nt;
    Ntuple_table.remove t.versions nt;
    t.dead <- Rid_set.add rid t.dead;
    (match t.btree with
    | Some tree ->
      Vset.fold (fun value () -> Btree.remove tree value rid) (ordered_values t nt) ()
    | None -> ())
  | None -> ()

let apply_journal t journal =
  List.iter
    (fun entry ->
      match entry with
      | Update.Added nt -> physical_add t nt
      | Update.Removed nt -> physical_remove t nt)
    journal

(* [synchronous] (default true) makes every commit point — autocommit
   op or Txn_commit — fsync before returning, so an embedded caller's
   acknowledgement is durable. The server opens tables with
   [~synchronous:false] and runs group commit instead: the event loop
   batches one [sync_wal] per tick over every dirty log and only then
   releases the acknowledgements it deferred. *)
let create ?(page_size = Page.default_size) ?wal_path ?(synchronous = true)
    ?ordered_on ~order schema =
  let ordered_position =
    Option.map (fun attribute -> Schema.position schema attribute) ordered_on
  in
  {
    schema;
    order;
    store = Update.Store.create ~order schema;
    page_size;
    heap = Heap.create ~page_size ();
    index = Index.create ();
    rids = Ntuple_table.create 256;
    versions = Ntuple_table.create 256;
    dead = Rid_set.empty;
    ordered_on = ordered_position;
    btree = Option.map (fun _ -> Btree.create ()) ordered_position;
    wal = Option.map Wal.open_log wal_path;
    wal_path;
    sync_on_commit = synchronous;
    health = Healthy;
    commit_seq = 0;
    ledger = { writes = Tuple_table.create 256; entries = 0 };
    txn = None;
  }

let apply_unlogged t entry =
  match entry with
  | Wal.Insert tuple ->
    let journal = Update.Store.insert_journaled t.store tuple in
    apply_journal t journal;
    journal <> []
  | Wal.Delete tuple ->
    let journal = Update.Store.delete_journaled t.store tuple in
    apply_journal t journal;
    true
  | Wal.Txn_begin _ | Wal.Txn_insert _ | Wal.Txn_delete _ | Wal.Txn_commit _
  | Wal.Txn_abort _ ->
    invalid_arg "Table.apply_unlogged: transaction records must be folded first"
  | Wal.View_def _ | Wal.View_drop _ ->
    invalid_arg "Table.apply_unlogged: view catalog records do not belong to a table log"
  | Wal.Manifest_commit _ ->
    invalid_arg "Table.apply_unlogged: manifest records belong to the commit manifest log"

(* The commit point of one autocommit op or one whole transaction:
   advance the sequence and remember which flat tuples it wrote, so a
   later committer can be checked against this one (first committer
   wins). *)
let note_commit t tuples =
  t.commit_seq <- t.commit_seq + 1;
  List.iter
    (fun tuple ->
      let bucket =
        match Tuple_table.find_opt t.ledger.writes tuple with
        | Some bucket -> bucket
        | None ->
          let bucket = ref [] in
          Tuple_table.replace t.ledger.writes tuple bucket;
          bucket
      in
      bucket := t.commit_seq :: !bucket;
      t.ledger.entries <- t.ledger.entries + 1)
    tuples

let load ?page_size ?wal_path ?synchronous ?ordered_on ~order flat =
  let t =
    create ?page_size ?wal_path ?synchronous ?ordered_on ~order
      (Relation.schema flat)
  in
  Relation.iter (fun tuple -> ignore (apply_unlogged t (Wal.Insert tuple))) flat;
  (* The bulk load is commit #1: its images carry stamp 1, and the
     ledger stays empty (a load is its own checkpoint). *)
  if Relation.cardinality flat > 0 then t.commit_seq <- 1;
  t

(* Fold a replayed entry stream into its committed effects:
   autocommit entries pass through one by one, transactional ops
   buffer per txid and surface as one group at their Txn_commit, and
   anything whose commit never landed — an explicit Txn_abort, or a
   buffer still open at end of log (a torn transaction) — is
   discarded. Discarded ops are correct rollback, not data loss.

   [durable] is the global-commit-manifest check: when given, a
   per-table Txn_commit is merely {e provisional}, and the group it
   closes only survives if the manifest holds a synced record for its
   txid. A commit whose manifest record is missing — a crash between
   the per-table appends and the manifest sync — is discarded exactly
   like a torn transaction, which is what makes multi-table commits
   all-or-nothing: either every table's group passes the same check,
   or none does. Such crash discards (torn tails and manifest-missing
   commits, not explicit aborts) are additionally reported per txid so
   the recovery report can break down what the crash cost. *)
type fold_report = {
  groups : [ `Auto of Wal.entry | `Group of Wal.entry list ] list;
  discarded_ops : int;  (* every discarded op: aborts, torn, manifest *)
  crash_discards : (int * int) list;  (* (txid, ops) torn or non-durable *)
}

let fold_committed ?durable entries =
  let buffers : (int, Wal.entry list ref) Hashtbl.t = Hashtbl.create 8 in
  let started : int list ref = ref [] in  (* txids in begin order *)
  let discarded = ref 0 in
  let crash_discards = ref [] in
  let buffer_of txid =
    match Hashtbl.find_opt buffers txid with
    | Some ops -> ops
    | None ->
      let ops = ref [] in
      Hashtbl.replace buffers txid ops;
      started := txid :: !started;
      ops
  in
  let drop ?(crash = false) txid =
    match Hashtbl.find_opt buffers txid with
    | Some ops ->
      discarded := !discarded + List.length !ops;
      if crash then crash_discards := (txid, List.length !ops) :: !crash_discards;
      Hashtbl.remove buffers txid;
      started := List.filter (fun id -> id <> txid) !started
    | None -> if crash then crash_discards := (txid, 0) :: !crash_discards
  in
  let groups =
    List.filter_map
      (fun entry ->
        match entry with
        | Wal.Insert _ | Wal.Delete _ -> Some (`Auto entry)
        | Wal.Txn_begin txid ->
          (* A re-begun txid implicitly aborts the earlier attempt. *)
          drop txid;
          ignore (buffer_of txid);
          None
        | Wal.Txn_insert (txid, tuple) ->
          let ops = buffer_of txid in
          ops := Wal.Insert tuple :: !ops;
          None
        | Wal.Txn_delete (txid, tuple) ->
          let ops = buffer_of txid in
          ops := Wal.Delete tuple :: !ops;
          None
        | Wal.Txn_commit txid -> (
          match durable with
          | Some durable when not (durable txid) ->
            (* Provisional commit with no manifest record: the crash
               landed between this table's append and the manifest
               sync. Roll the group back. *)
            drop ~crash:true txid;
            None
          | _ -> (
            match Hashtbl.find_opt buffers txid with
            | Some ops ->
              Hashtbl.remove buffers txid;
              started := List.filter (fun id -> id <> txid) !started;
              Some (`Group (List.rev !ops))
            | None -> Some (`Group [])))
        | Wal.Txn_abort txid ->
          drop txid;
          None
        | Wal.View_def _ | Wal.View_drop _ | Wal.Manifest_commit _ ->
          (* Catalog/manifest records; a table log should never hold
             one, but a foreign entry is not worth failing recovery
             over. *)
          None)
      entries
  in
  List.iter (drop ~crash:true) (List.rev !started);
  { groups; discarded_ops = !discarded; crash_discards = List.rev !crash_discards }

let recover ?page_size ?synchronous ?ordered_on ?durable ~wal_path ~order schema =
  let entries = Wal.replay wal_path in
  let t = create ?page_size ~wal_path ?synchronous ?ordered_on ~order schema in
  let { groups; _ } = fold_committed ?durable entries in
  let apply entry =
    match apply_unlogged t entry with
    | _ -> ()
    | exception Update.Not_in_relation ->
      (* A delete whose insert was lost cannot be replayed; the log
         is the source of truth, so this is corruption. *)
      Storage_error.corrupt ~context:"Table.recover" ~offset:0
        "WAL deletes a tuple that is not present"
  in
  List.iter
    (function
      | `Auto entry ->
        apply entry;
        note_commit t []
      | `Group entries ->
        List.iter apply entries;
        note_commit t [])
    groups;
  t

type recovery_report = {
  wal_salvage : Wal.salvage option;
  snapshot_status : [ `Loaded | `Absent | `Corrupt of string | `None_requested ];
  stale_wal : bool;
  applied : int;
  skipped_ops : int;
  discarded_txn_ops : int;
  discarded_txns : (int * int) list;
      (* (txid, ops rolled back) for each transaction this table
         discarded as a crash cost: a torn tail, or a provisional
         commit whose manifest record never synced. Cross-table
         recovery aggregates these per table so an operator can audit
         exactly what a crash rolled back where. *)
}

(* Replay entries, skipping (and counting) any that cannot be applied —
   a delete whose insert was salvaged away, or a decoded-but-bogus
   tuple from debris that slipped past a legacy checksum. Nothing in
   here may take the table down mid-recovery. Uncommitted transactional
   tails are folded away first and counted separately: discarding them
   is the contract, not damage. *)
let apply_salvaged ?durable t entries =
  let { groups; discarded_ops; crash_discards } = fold_committed ?durable entries in
  let applied = ref 0 and skipped = ref 0 in
  let apply entry =
    match apply_unlogged t entry with
    | _ -> incr applied
    | exception
        ( Update.Not_in_relation | Update.Update_diverged _
        | Storage_error.Error _ | Invalid_argument _ | Failure _ ) ->
      incr skipped
  in
  List.iter
    (function
      | `Auto entry ->
        apply entry;
        note_commit t []
      | `Group entries ->
        List.iter apply entries;
        note_commit t [])
    groups;
  (!applied, !skipped, discarded_ops, crash_discards)

let degrade_if_lossy t report =
  let wal_damage =
    match report.wal_salvage with
    | Some salvage -> salvage.Wal.bytes_skipped > 0
    | None -> false
  in
  let snapshot_damage = match report.snapshot_status with `Corrupt _ -> true | _ -> false in
  if wal_damage || snapshot_damage || report.skipped_ops > 0 then
    t.health <-
      Degraded
        (Printf.sprintf
           "recovered with loss (snapshot %s, %d WAL bytes skipped, %d ops skipped)"
           (match report.snapshot_status with
           | `Corrupt reason -> "corrupt: " ^ reason
           | `Loaded -> "ok"
           | `Absent -> "absent"
           | `None_requested -> "not requested")
           (match report.wal_salvage with
           | Some salvage -> salvage.Wal.bytes_skipped
           | None -> 0)
           report.skipped_ops)

let recover_salvage ?page_size ?synchronous ?ordered_on ?durable ~wal_path ~order
    schema =
  Obs.Span.with_span Obs.Span.Salvage wal_path @@ fun _ ->
  Obs.Registry.incr Obs.Registry.global "wal.recover_salvage_total";
  let salvage = Wal.replay_salvage wal_path in
  let t = create ?page_size ~wal_path ?synchronous ?ordered_on ~order schema in
  let applied, skipped_ops, discarded_txn_ops, discarded_txns =
    apply_salvaged ?durable t salvage.Wal.entries
  in
  let report =
    {
      wal_salvage = Some salvage;
      snapshot_status = `None_requested;
      stale_wal = false;
      applied;
      skipped_ops;
      discarded_txn_ops;
      discarded_txns;
    }
  in
  degrade_if_lossy t report;
  (t, report)

let close t = Option.iter Wal.close t.wal
let schema t = t.schema
let nest_order t = t.order

let ordered_attribute t =
  Option.map (fun position -> Schema.attribute_at t.schema position) t.ordered_on

let posting_size t attribute value =
  Index.posting_size t.index ~position:(Schema.position t.schema attribute) value

let health t = t.health

let require_writable t =
  match t.health with
  | Healthy -> ()
  | Degraded reason -> raise (Storage_error.Error (Storage_error.Degraded reason))

(* Run a WAL operation under the durability error envelope. A failure
   (closed channel, I/O error, fsync error) leaves the logical and
   physical layers untouched and consistent: the table transitions to
   read-only [Degraded] and the typed error propagates. A
   [Failpoint.Crashed] is different — it simulates process death and
   must reach the harness untranslated. *)
let guard_wal t f =
  match t.wal with
  | None -> ()
  | Some wal -> (
    try f wal with
    | Failpoint.Crashed _ as e -> raise e
    | Storage_error.Error ((Storage_error.Closed _ | Storage_error.Corrupt _) as err) ->
      let reason = Storage_error.to_string err in
      t.health <- Degraded reason;
      raise (Storage_error.Error (Storage_error.Degraded reason))
    | Sys_error reason ->
      t.health <- Degraded reason;
      raise (Storage_error.Error (Storage_error.Degraded reason))
    | Unix.Unix_error (err, _, _) ->
      let reason = Unix.error_message err in
      t.health <- Degraded reason;
      raise (Storage_error.Error (Storage_error.Degraded reason)))

(* Log the entry before touching any in-memory state. [~sync:true]
   marks a commit point: on a synchronous table the append is fsynced
   before this returns, so the caller's acknowledgement is durable.
   Asynchronous tables leave the bytes in the OS page cache for the
   group-commit scheduler ([sync_wal]) to cover. *)
let log_durably ?(sync = false) t entry =
  guard_wal t (fun wal ->
      Wal.append wal entry;
      if sync && t.sync_on_commit then Wal.sync wal)

let sync_wal t = guard_wal t Wal.sync

let wal_unsynced t =
  match t.wal with Some wal -> Wal.unsynced_bytes wal | None -> 0

let require_no_txn t context =
  if t.txn <> None then
    invalid_arg (context ^ ": a storage transaction is already open")

let insert t tuple =
  require_writable t;
  require_no_txn t "Table.insert";
  if Update.Store.member t.store tuple then false
  else begin
    log_durably ~sync:true t (Wal.Insert tuple);
    let applied = apply_unlogged t (Wal.Insert tuple) in
    note_commit t [ tuple ];
    applied
  end

let delete t tuple =
  require_writable t;
  require_no_txn t "Table.delete";
  if not (Update.Store.member t.store tuple) then raise Update.Not_in_relation;
  log_durably ~sync:true t (Wal.Delete tuple);
  ignore (apply_unlogged t (Wal.Delete tuple));
  note_commit t [ tuple ]

(* ------------------------------------------------------------------ *)
(* Storage-level transactions                                          *)
(* ------------------------------------------------------------------ *)

let commit_seq t = t.commit_seq
let in_txn t = t.txn <> None
let version_of t nt = Ntuple_table.find_opt t.versions nt

(* One bucket probe; sequences are newest-first, so the head decides. *)
let modified_since t ~seq tuple =
  match Tuple_table.find_opt t.ledger.writes tuple with
  | Some bucket -> ( match !bucket with s :: _ -> s > seq | [] -> false)
  | None -> false

let prune_ledger t ~below =
  let stale =
    Tuple_table.fold
      (fun tuple bucket acc ->
        let kept = List.filter (fun s -> s > below) !bucket in
        let dropped = List.length !bucket - List.length kept in
        t.ledger.entries <- t.ledger.entries - dropped;
        bucket := kept;
        if kept = [] then tuple :: acc else acc)
      t.ledger.writes []
  in
  List.iter (Tuple_table.remove t.ledger.writes) stale

let ledger_size t = t.ledger.entries

let require_txn t context txid =
  match t.txn with
  | Some txn when txn.txid = txid -> txn
  | Some txn ->
    invalid_arg
      (Printf.sprintf "%s: transaction %d is open, not %d" context txn.txid txid)
  | None -> invalid_arg (context ^ ": no storage transaction is open")

let begin_txn t ~txid =
  require_writable t;
  require_no_txn t "Table.begin_txn";
  log_durably t (Wal.Txn_begin txid);
  t.txn <- Some { txid; undo = []; written = [] }

let txn_insert t ~txid tuple =
  require_writable t;
  let txn = require_txn t "Table.txn_insert" txid in
  if Update.Store.member t.store tuple then false
  else begin
    log_durably t (Wal.Txn_insert (txid, tuple));
    let journal = Update.Store.insert_journaled t.store tuple in
    apply_journal t journal;
    txn.undo <- List.rev_append journal txn.undo;
    txn.written <- tuple :: txn.written;
    journal <> []
  end

let txn_delete t ~txid tuple =
  require_writable t;
  let txn = require_txn t "Table.txn_delete" txid in
  if not (Update.Store.member t.store tuple) then raise Update.Not_in_relation;
  log_durably t (Wal.Txn_delete (txid, tuple));
  let journal = Update.Store.delete_journaled t.store tuple in
  apply_journal t journal;
  txn.undo <- List.rev_append journal txn.undo;
  txn.written <- tuple :: txn.written

let commit_txn t ~txid =
  require_writable t;
  let txn = require_txn t "Table.commit_txn" txid in
  (* The commit record is the transaction's durability point; the
     Txn_begin/op entries before it ride along under the same fsync. *)
  log_durably ~sync:true t (Wal.Txn_commit txid);
  note_commit t (List.rev txn.written);
  t.txn <- None;
  t.commit_seq

(* Put the in-memory layers back exactly as they were before the
   transaction's ops, then record the abort. The undo application
   cannot fail (it replays already-derived journal entries); if the
   abort record itself cannot be logged the table is degraded but the
   memory image is already consistent — and recovery discards the
   commit-less tail anyway, so disk agrees. *)
let abort_txn t ~txid =
  let txn = require_txn t "Table.abort_txn" txid in
  (* [undo] is accumulated newest-first, so re-reverse before inverting. *)
  let inverse = Update.invert_journal (List.rev txn.undo) in
  Update.Store.apply_journal t.store inverse;
  apply_journal t inverse;
  t.txn <- None;
  match t.wal with
  | None -> ()
  | Some _ -> (
    try log_durably t (Wal.Txn_abort txid)
    with Storage_error.Error _ -> ())

let member t tuple = Update.Store.member t.store tuple
let snapshot t = Update.Store.snapshot t.store
let cardinality t = Update.Store.cardinality t.store
let fact_count t = Nfr.expansion_size (snapshot t)

let lookup t ~stats attribute value =
  let position = Schema.position t.schema attribute in
  let rids = Index.lookup t.index ~stats ~position value in
  List.filter_map
    (fun rid ->
      if Rid_set.mem rid t.dead then None
      else begin
        let record = Heap.fetch t.heap ~stats rid in
        Some (fst (Codec.decode_ntuple (Bytes.of_string record) 0))
      end)
    rids

let scan t ~stats f =
  Heap.scan t.heap ~stats (fun rid record ->
      if not (Rid_set.mem rid t.dead) then
        f (fst (Codec.decode_ntuple (Bytes.of_string record) 0)))

let decode_record record = fst (Codec.decode_ntuple (Bytes.of_string record) 0)

let scan_cursor t ~stats =
  let next = Heap.cursor t.heap ~stats in
  let rec pull () =
    match next () with
    | None -> None
    | Some (rid, record) ->
      if Rid_set.mem rid t.dead then pull () else Some (decode_record record)
  in
  pull

let lookup_cursor t ~stats attribute value =
  let position = Schema.position t.schema attribute in
  let pending = ref (Index.lookup t.index ~stats ~position value) in
  let rec pull () =
    match !pending with
    | [] -> None
    | rid :: rest ->
      pending := rest;
      if Rid_set.mem rid t.dead then pull ()
      else Some (decode_record (Heap.fetch t.heap ~stats rid))
  in
  pull

let range_cursor t ~stats ?lo ?hi ?lo_incl ?hi_incl () =
  match t.btree, t.ordered_on with
  | Some tree, Some _position ->
    (* The leaf walk (keys and rid lists) happens up front; records are
       fetched and decoded lazily, one tuple per pull. A rid posted
       under several in-range keys is returned once. *)
    let postings = ref (Btree.range_open tree ~stats ?lo ?hi ?lo_incl ?hi_incl ()) in
    let current = ref [] in
    let seen = ref Rid_set.empty in
    let rec pull () =
      match !current with
      | rid :: rest ->
        current := rest;
        if Rid_set.mem rid !seen || Rid_set.mem rid t.dead then pull ()
        else begin
          seen := Rid_set.add rid !seen;
          Some (decode_record (Heap.fetch t.heap ~stats rid))
        end
      | [] -> (
        match !postings with
        | [] -> None
        | (_key, rids) :: rest ->
          postings := rest;
          current := rids;
          pull ())
    in
    pull
  | None, _ | _, None ->
    invalid_arg "Table.range_cursor: no ordered index (pass ~ordered_on)"

let range t ~stats ~lo ~hi =
  match t.btree with
  | None -> invalid_arg "Table.range: no ordered index (pass ~ordered_on)"
  | Some _ ->
    let next = range_cursor t ~stats ~lo ~hi () in
    let rec collect acc =
      match next () with
      | Some nt -> collect (nt :: acc)
      | None -> List.rev acc
    in
    collect []

let live_records t = Ntuple_table.length t.rids
let dead_records t = Rid_set.cardinal t.dead
let pages t = Heap.page_count t.heap
let pool t = Heap.pool t.heap
let pool_hit_rate t = Bufpool.hit_rate (Heap.pool t.heap)

let compact t =
  let live = snapshot t in
  (* Rebuilding re-appends every live record through [physical_add],
     which would restamp the images at the current sequence; a compact
     changes the physical layout, not the commit history, so carry the
     stamps over. *)
  let stamps = t.versions in
  t.heap <- Heap.create ~page_size:t.page_size ();
  t.index <- Index.create ();
  t.rids <- Ntuple_table.create 256;
  t.versions <- Ntuple_table.create 256;
  t.dead <- Rid_set.empty;
  t.btree <- Option.map (fun _ -> Btree.create ()) t.ordered_on;
  Nfr.iter (physical_add t) live;
  Ntuple_table.iter
    (fun nt seq ->
      if Ntuple_table.mem t.rids nt then Ntuple_table.replace t.versions nt seq)
    stamps

let checkpoint t =
  require_writable t;
  compact t;
  match t.wal with
  | Some wal -> Wal.truncate wal
  | None -> Option.iter Wal.reset t.wal_path

(* Snapshot format v1: magic "NF2SNAP1", then a CRC-32-protected body
   (varint WAL generation at save time, schema as degree + name/ty-tag
   pairs, nest order names, tuple count, tuples), then the CRC-32 of
   the body little-endian. Legacy snapshots (no magic, no trailer,
   no generation) still load. Writes go to [path ^ ".tmp"] and rename
   into place, so a crash mid-save never clobbers the old snapshot. *)
let snapshot_magic = "NF2SNAP1"

let ty_tag = function
  | Value.Tint -> 0
  | Value.Tfloat -> 1
  | Value.Tstring -> 2
  | Value.Tbool -> 3

let ty_of_tag ~offset = function
  | 0 -> Value.Tint
  | 1 -> Value.Tfloat
  | 2 -> Value.Tstring
  | 3 -> Value.Tbool
  | tag ->
    Storage_error.corrupt ~context:"Table.load_snapshot" ~offset
      (Printf.sprintf "unknown type tag %d" tag)

let encode_string buffer s =
  Codec.encode_varint buffer (String.length s);
  Buffer.add_string buffer s

let decode_string bytes offset =
  let length, offset = Codec.decode_varint bytes offset in
  if length < 0 || offset + length > Bytes.length bytes then
    Storage_error.corrupt ~context:"Table.load_snapshot" ~offset "truncated string";
  (Bytes.sub_string bytes offset length, offset + length)

let add_le32 buffer n =
  for shift = 0 to 3 do
    Buffer.add_char buffer (Char.chr ((n lsr (shift * 8)) land 0xFF))
  done

let read_le32 s offset =
  let byte i = Char.code s.[offset + i] in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

let save_snapshot t path =
  Obs.Span.with_span Obs.Span.Snapshot_write path @@ fun snapshot_span ->
  Obs.Registry.incr Obs.Registry.global "snapshot.write_total";
  let body = Buffer.create 4096 in
  Codec.encode_varint body (match t.wal with Some wal -> Wal.generation wal | None -> 0);
  Codec.encode_varint body (Schema.degree t.schema);
  List.iter
    (fun (attribute, ty) ->
      encode_string body (Attribute.name attribute);
      Codec.encode_varint body (ty_tag ty))
    (Schema.columns t.schema);
  List.iter (fun attribute -> encode_string body (Attribute.name attribute)) t.order;
  let snapshot = snapshot t in
  Codec.encode_varint body (Nfr.cardinality snapshot);
  Nfr.iter (Codec.encode_ntuple body) snapshot;
  let payload = Buffer.contents body in
  let file = Buffer.create (String.length payload + 16) in
  Buffer.add_string file snapshot_magic;
  Buffer.add_string file payload;
  add_le32 file (Crc32.digest payload);
  let temp = path ^ ".tmp" in
  (match Failpoint.on_write "snapshot.body" (Buffer.contents file) with
  | Failpoint.Full data ->
    Out_channel.with_open_bin temp (fun oc -> Out_channel.output_string oc data)
  | Failpoint.Dropped ->
    Out_channel.with_open_bin temp (fun oc -> Out_channel.output_string oc "")
  | Failpoint.Partial prefix ->
    Out_channel.with_open_bin temp (fun oc -> Out_channel.output_string oc prefix);
    raise (Failpoint.Crashed "snapshot.body"));
  Obs.Span.set_bytes snapshot_span (String.length payload);
  Failpoint.hit "snapshot.rename";
  Sys.rename temp path

(* Parse a snapshot file into (wal generation, table) — raising typed
   errors on any damage; integrity is checked before anything is
   built. *)
let parse_snapshot ?page_size ?wal_path ?synchronous ?ordered_on contents =
  let generation, bytes =
    if
      String.length contents >= String.length snapshot_magic + 4
      && String.sub contents 0 (String.length snapshot_magic) = snapshot_magic
    then begin
      let body_length = String.length contents - String.length snapshot_magic - 4 in
      let stored = read_le32 contents (String.length contents - 4) in
      let payload = String.sub contents (String.length snapshot_magic) body_length in
      if Crc32.digest payload <> stored then
        Storage_error.corrupt ~context:"Table.load_snapshot"
          ~offset:(String.length contents - 4)
          "checksum mismatch (torn or bit-flipped snapshot)";
      let bytes = Bytes.of_string payload in
      let generation, offset = Codec.decode_varint bytes 0 in
      (generation, (bytes, offset))
    end
    else (0, (Bytes.of_string contents, 0))
  in
  let bytes, start = bytes in
  let degree, offset = Codec.decode_varint bytes start in
  if degree = 0 then
    Storage_error.corrupt ~context:"Table.load_snapshot" ~offset:start "empty schema";
  if degree < 0 || degree > Bytes.length bytes - offset then
    Storage_error.corrupt ~context:"Table.load_snapshot" ~offset:start
      "schema degree exceeds snapshot size";
  let columns = ref [] in
  let offset = ref offset in
  for _ = 1 to degree do
    let name, next = decode_string bytes !offset in
    let tag, next = Codec.decode_varint bytes next in
    columns := (name, ty_of_tag ~offset:next tag) :: !columns;
    offset := next
  done;
  let schema = Schema.of_names (List.rev !columns) in
  let order = ref [] in
  for _ = 1 to degree do
    let name, next = decode_string bytes !offset in
    order := Attribute.make name :: !order;
    offset := next
  done;
  let count, next = Codec.decode_varint bytes !offset in
  if count < 0 || count > Bytes.length bytes - next then
    Storage_error.corrupt ~context:"Table.load_snapshot" ~offset:!offset
      "tuple count exceeds snapshot size";
  offset := next;
  let t =
    create ?page_size ?wal_path ?synchronous ?ordered_on
      ~order:(List.rev !order) schema
  in
  for _ = 1 to count do
    let nt, next = Codec.decode_ntuple bytes !offset in
    offset := next;
    (* Feed the flat facts through the normal path so logic and
       physical layers stay in sync and canonicity is re-established
       even if the snapshot was tampered with. *)
    List.iter
      (fun tuple -> ignore (apply_unlogged t (Wal.Insert tuple)))
      (Ntuple.expand nt)
  done;
  if count > 0 then t.commit_seq <- 1;
  (generation, t)

let load_snapshot ?page_size ?wal_path ?synchronous ?ordered_on ?durable path =
  Obs.Span.with_span Obs.Span.Snapshot_load path @@ fun _ ->
  Obs.Registry.incr Obs.Registry.global "snapshot.load_total";
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let snapshot_generation, t =
    parse_snapshot ?page_size ?wal_path ?synchronous ?ordered_on contents
  in
  (match wal_path with
  | Some wal_path ->
    let salvage = Wal.replay_salvage wal_path in
    (* A WAL at or below the snapshot's generation predates it — its
       entries are already folded into the snapshot (the crash window
       between save_snapshot and the checkpoint's truncation), so
       replaying them would double-apply. *)
    let stale = snapshot_generation > 0 && salvage.Wal.generation <= snapshot_generation in
    if not stale then begin
      let { groups; _ } = fold_committed ?durable (Wal.replay wal_path) in
      let apply entry =
        match apply_unlogged t entry with
        | _ -> ()
        | exception Update.Not_in_relation ->
          Storage_error.corrupt ~context:"Table.load_snapshot" ~offset:0
            "WAL deletes an absent tuple"
      in
      List.iter
        (function
          | `Auto entry ->
            apply entry;
            note_commit t []
          | `Group entries ->
            List.iter apply entries;
            note_commit t [])
        groups
    end
  | None -> ());
  t

let load_snapshot_salvage ?page_size ?wal_path ?synchronous ?ordered_on ?durable
    path =
  Obs.Span.with_span Obs.Span.Salvage path @@ fun _ ->
  Obs.Registry.incr Obs.Registry.global "snapshot.salvage_total";
  let snapshot_result =
    match In_channel.with_open_bin path In_channel.input_all with
    | contents -> (
      match parse_snapshot ?page_size ?wal_path ?synchronous ?ordered_on contents with
      | result -> Ok result
      | exception Storage_error.Error err -> Error (Storage_error.to_string err)
      | exception Schema.Schema_error reason -> Error reason)
    | exception Sys_error _ -> Error "snapshot file unreadable"
  in
  let (snapshot_generation, t), snapshot_status =
    match snapshot_result with
    | Ok (generation, t) -> ((generation, t), `Loaded)
    | Error reason ->
      let missing = not (Sys.file_exists path) in
      ( (0, create ?page_size ~order:[ Attribute.make "_" ] (Schema.strings [ "_" ])),
        if missing then `Absent else `Corrupt reason )
  in
  (* A corrupt snapshot leaves us without a schema to recover into;
     the caller owns the schema in that situation and should use
     [recover_salvage] — signalled through the report. *)
  match wal_path with
  | None ->
    let report =
      {
        wal_salvage = None;
        snapshot_status;
        stale_wal = false;
        applied = 0;
        skipped_ops = 0;
        discarded_txn_ops = 0;
        discarded_txns = [];
      }
    in
    degrade_if_lossy t report;
    (t, report)
  | Some wal_path ->
    let salvage = Wal.replay_salvage wal_path in
    let stale =
      snapshot_status = `Loaded && snapshot_generation > 0
      && salvage.Wal.generation <= snapshot_generation
    in
    let applied, skipped_ops, discarded_txn_ops, discarded_txns =
      if stale || snapshot_status <> `Loaded then (0, 0, 0, [])
      else apply_salvaged ?durable t salvage.Wal.entries
    in
    let report =
      {
        wal_salvage = Some salvage;
        snapshot_status;
        stale_wal = stale;
        applied;
        skipped_ops;
        discarded_txn_ops;
        discarded_txns;
      }
    in
    degrade_if_lossy t report;
    (t, report)

(* ------------------------------------------------------------------ *)
(* Cross-layer invariants                                              *)
(* ------------------------------------------------------------------ *)

let check_invariants t =
  let snapshot = snapshot t in
  let ntuples = Nfr.ntuples snapshot in
  let stats = Stats.create () in
  let rid_count_matches = List.length ntuples = Ntuple_table.length t.rids in
  let store_mirrored =
    List.for_all (fun nt -> Ntuple_table.mem t.rids nt) ntuples
  in
  let versions_stamped =
    Ntuple_table.length t.versions = Ntuple_table.length t.rids
    && Ntuple_table.fold
         (fun nt _rid acc ->
           acc
           &&
           match Ntuple_table.find_opt t.versions nt with
           | Some seq -> seq >= 1 && seq <= t.commit_seq + 1
           | None -> false)
         t.rids true
  in
  let heap_roundtrips =
    Ntuple_table.fold
      (fun nt rid acc ->
        acc
        && (not (Rid_set.mem rid t.dead))
        &&
        match Codec.decode_ntuple (Bytes.of_string (Heap.get t.heap rid)) 0 with
        | decoded, _ -> Ntuple.equal decoded nt
        | exception Storage_error.Error _ -> false
        | exception Invalid_argument _ -> false)
      t.rids true
  in
  let postings_complete =
    Ntuple_table.fold
      (fun nt rid acc ->
        acc
        && List.for_all
             (fun (position, component) ->
               Vset.for_all
                 (fun value ->
                   List.mem rid (Index.lookup t.index ~stats ~position value))
                 component)
             (List.mapi (fun i component -> (i, component)) (Ntuple.components nt)))
      t.rids true
  in
  let btree_consistent =
    match t.btree, t.ordered_on with
    | Some tree, Some position ->
      Btree.check_invariants tree
      && Ntuple_table.fold
           (fun nt rid acc ->
             acc
             && Vset.for_all
                  (fun value -> List.mem rid (Btree.lookup tree ~stats value))
                  (Ntuple.component nt position))
           t.rids true
    | None, _ | _, None -> true
  in
  rid_count_matches && store_mirrored && versions_stamped && heap_roundtrips
  && postings_complete && btree_consistent
