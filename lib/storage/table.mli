(** A live NFR table: canonical maintenance + physical storage + WAL.

    Combines the three layers this library builds:

    - logic: {!Nfr_core.Update.Store} keeps the relation canonical
      under inserts/deletes (Sec. 4 algorithms, postings-indexed);
    - physical: every current NFR tuple lives in a {!Heap} record with
      {!Index} postings; updates tombstone dead records and append new
      ones (journal-driven), {!compact} rebuilds when the dead ratio
      grows;
    - durability: a logical {!Wal}; {!recover} replays it from an
      empty table, so a crash loses at most the unfinished entry.

    The heap/index are in-memory stand-ins for disk blocks (as in
    {!Engine}); durability comes solely from the WAL.

    {2 Failure model}

    Durability failures never leave the table half-updated: the WAL
    append happens strictly before any logical or physical mutation,
    and when it fails (closed handle, I/O error) the table transitions
    to the read-only {!constructor-Degraded} health state with the
    in-memory layers still mutually consistent; the write raises
    {!Storage_error.Error}. Recovery from damaged media goes through
    {!recover_salvage}/{!load_snapshot_salvage}, which never raise on
    corruption — they skip what cannot be replayed and return a
    {!recovery_report}; a lossy recovery also lands Degraded.
    {!check_invariants} cross-validates the canonical store against
    the heap, the postings index and the B+-tree. *)

open Relational
open Nfr_core

type t

(** Health of the durability layer. A [Degraded] table serves reads
    but rejects {!insert}/{!delete}/{!checkpoint} with
    {!Storage_error.Error}[ (Degraded _)]. *)
type health =
  | Healthy
  | Degraded of string  (** reason recorded at the transition *)

val create :
  ?page_size:int ->
  ?wal_path:string ->
  ?ordered_on:Attribute.t ->
  order:Attribute.t list ->
  Schema.t ->
  t
(** An empty table. With [wal_path], every update is logged before it
    is applied; with [ordered_on], a {!Btree} over that attribute's
    component values is maintained and {!range} becomes available. *)

val load :
  ?page_size:int ->
  ?wal_path:string ->
  ?ordered_on:Attribute.t ->
  order:Attribute.t list ->
  Relation.t ->
  t
(** Bulk-load a flat relation (canonicalized; not logged — a bulk load
    is its own checkpoint). *)

val recover :
  ?page_size:int ->
  ?ordered_on:Attribute.t ->
  wal_path:string ->
  order:Attribute.t list ->
  Schema.t ->
  t
(** Rebuild by replaying the WAL from an empty table.
    @raise Storage_error.Error on mid-log corruption or a delete of an
    absent tuple — use {!recover_salvage} to recover around damage. *)

(** What a salvage recovery found and did. *)
type recovery_report = {
  wal_salvage : Wal.salvage option;  (** [None] when no WAL was involved *)
  snapshot_status : [ `Loaded | `Absent | `Corrupt of string | `None_requested ];
  stale_wal : bool;
      (** the WAL predates the snapshot (crash between
          {!save_snapshot} and the checkpoint's truncation) and was
          skipped *)
  applied : int;  (** WAL entries applied *)
  skipped_ops : int;  (** WAL entries that could not be applied *)
}

val recover_salvage :
  ?page_size:int ->
  ?ordered_on:Attribute.t ->
  wal_path:string ->
  order:Attribute.t list ->
  Schema.t ->
  t * recovery_report
(** Like {!recover} but never raises on damage: mid-log corruption is
    skipped frame by frame ({!Wal.replay_salvage}) and inapplicable
    entries are counted rather than fatal. A lossy recovery leaves the
    table {!constructor-Degraded} (read-only); {!check_invariants}
    holds either way. *)

val health : t -> health

val check_invariants : t -> bool
(** Cross-layer audit: the canonical store, the rid map, the heap
    records, the postings index and the B+-tree all describe the same
    relation (every live NFR tuple decodes from its heap record, is
    indexed under each of its component values, and is absent from the
    tombstone set; B+-tree structural invariants hold). *)

val close : t -> unit

val schema : t -> Schema.t
val nest_order : t -> Attribute.t list
val ordered_attribute : t -> Attribute.t option
(** The attribute carrying the B+-tree, if any. *)

val posting_size : t -> Attribute.t -> Value.t -> int
(** Selectivity statistic: how many heap records (live or tombstoned)
    the inverted index lists for this (attribute, value). Free of
    charge — used by the physical planner to rank candidate probes. *)

val insert : t -> Tuple.t -> bool
(** Logs, updates the canonical store, mirrors the journal onto the
    heap/index. [false] (and no log entry) on duplicates.
    @raise Storage_error.Error [(Degraded _)] when the table is (or
    this call's durability failure leaves it) degraded; the logical
    and physical layers are untouched in that case. *)

val delete : t -> Tuple.t -> unit
(** @raise Update.Not_in_relation when absent (nothing is logged).
    @raise Storage_error.Error [(Degraded _)] as for {!insert}. *)

val member : t -> Tuple.t -> bool
val snapshot : t -> Nfr.t
val cardinality : t -> int
(** Current number of NFR tuples. *)

val fact_count : t -> int
(** Number of flat facts ([R*] cardinality). *)

val lookup : t -> stats:Stats.t -> Attribute.t -> Value.t -> Ntuple.t list
(** Indexed containment lookup against the physical store (tombstoned
    records are skipped but charged as index probes). *)

val scan : t -> stats:Stats.t -> (Ntuple.t -> unit) -> unit
(** Full heap scan over live records. *)

val range : t -> stats:Stats.t -> lo:Value.t -> hi:Value.t -> Ntuple.t list
(** NFR tuples whose ordered component holds a value in
    [\[lo, hi\]], each returned once, via the B+-tree.
    @raise Invalid_argument when the table has no ordered index. *)

(** {2 Pull-based cursors}

    Each cursor is a [unit -> Ntuple.t option] thunk returning the
    next live tuple (or [None] when exhausted), charging the given
    stats exactly as the materializing variant would — but one tuple
    per pull, so a pipelined consumer holds O(1) decoded tuples. The
    table must not be mutated while a cursor is live. *)

val scan_cursor : t -> stats:Stats.t -> unit -> Ntuple.t option
(** Streaming {!scan}. *)

val lookup_cursor :
  t -> stats:Stats.t -> Attribute.t -> Value.t -> unit -> Ntuple.t option
(** Streaming {!lookup}: the index probe happens at creation, heap
    fetches and decoding happen lazily per pull. *)

val range_cursor :
  t ->
  stats:Stats.t ->
  ?lo:Value.t ->
  ?hi:Value.t ->
  ?lo_incl:bool ->
  ?hi_incl:bool ->
  unit ->
  unit ->
  Ntuple.t option
(** Streaming {!range}, with either bound optional (open-ended
    one-sided ranges walk the leaf chain from the leftmost leaf or to
    its end) and either bound strict when its [_incl] flag is [false]
    (the boundary group is skipped in the B+-tree, never fetched).
    Each matching tuple is returned once.
    @raise Invalid_argument when the table has no ordered index. *)

val live_records : t -> int
val dead_records : t -> int
val pages : t -> int

val compact : t -> unit
(** Rebuild heap and index from the live snapshot, dropping
    tombstones. *)

val checkpoint : t -> unit
(** {!compact} and truncate the WAL (bumping its generation). Pair
    with {!save_snapshot} first — after a checkpoint the WAL alone
    replays to an empty table. A crash between the two is safe: the
    snapshot records the pre-truncation generation, so recovery
    recognizes the old log as stale instead of double-applying it. *)

val save_snapshot : t -> string -> unit
(** Serialize schema, nest order and every NFR tuple to a file
    (binary, via {!Codec}), atomically: the bytes (with a magic header
    and CRC-32 trailer) go to [path ^ ".tmp"] and are renamed into
    place, so a crash mid-save leaves any previous snapshot intact. *)

val load_snapshot :
  ?page_size:int -> ?wal_path:string -> ?ordered_on:Attribute.t -> string -> t
(** Rebuild a table from {!save_snapshot} output, then replay
    [wal_path] (if given) on top — the full recovery story: snapshot
    at the last checkpoint + the log since. A WAL whose generation is
    at or below the snapshot's is stale (already folded in) and is
    skipped. Legacy un-checksummed snapshots still load.
    @raise Storage_error.Error on a torn, bit-flipped or otherwise
    malformed snapshot, or on an inapplicable WAL entry. *)

val load_snapshot_salvage :
  ?page_size:int ->
  ?wal_path:string ->
  ?ordered_on:Attribute.t ->
  string ->
  t * recovery_report
(** Best-effort {!load_snapshot}: a corrupt or missing snapshot is
    reported (not raised) and recovery falls back to an empty
    placeholder table — check [snapshot_status] and rerun
    {!recover_salvage} with the authoritative schema in that case;
    WAL damage and inapplicable entries are skipped and counted as in
    {!recover_salvage}. *)
