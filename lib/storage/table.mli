(** A live NFR table: canonical maintenance + physical storage + WAL.

    Combines the three layers this library builds:

    - logic: {!Nfr_core.Update.Store} keeps the relation canonical
      under inserts/deletes (Sec. 4 algorithms, postings-indexed);
    - physical: every current NFR tuple lives in a {!Heap} record with
      {!Index} postings; updates tombstone dead records and append new
      ones (journal-driven), {!compact} rebuilds when the dead ratio
      grows;
    - durability: a logical {!Wal}; {!recover} replays it from an
      empty table, so a crash loses at most the unfinished entry.

    The heap/index are in-memory stand-ins for disk blocks (as in
    {!Engine}); durability comes solely from the WAL.

    {2 Failure model}

    Durability failures never leave the table half-updated: the WAL
    append happens strictly before any logical or physical mutation,
    and when it fails (closed handle, I/O error) the table transitions
    to the read-only {!constructor-Degraded} health state with the
    in-memory layers still mutually consistent; the write raises
    {!Storage_error.Error}. Recovery from damaged media goes through
    {!recover_salvage}/{!load_snapshot_salvage}, which never raise on
    corruption — they skip what cannot be replayed and return a
    {!recovery_report}; a lossy recovery also lands Degraded.
    {!check_invariants} cross-validates the canonical store against
    the heap, the postings index and the B+-tree. *)

open Relational
open Nfr_core

type t

(** Health of the durability layer. A [Degraded] table serves reads
    but rejects {!insert}/{!delete}/{!checkpoint} with
    {!Storage_error.Error}[ (Degraded _)]. *)
type health =
  | Healthy
  | Degraded of string  (** reason recorded at the transition *)

val create :
  ?page_size:int ->
  ?wal_path:string ->
  ?synchronous:bool ->
  ?ordered_on:Attribute.t ->
  order:Attribute.t list ->
  Schema.t ->
  t
(** An empty table. With [wal_path], every update is logged before it
    is applied; with [ordered_on], a {!Btree} over that attribute's
    component values is maintained and {!range} becomes available.

    [synchronous] (default [true]) makes every commit point fsync
    ({!Wal.sync}) before returning — an embedded caller's
    acknowledgement is durable against power loss. Pass
    [~synchronous:false] to run group commit instead: appends stop at
    the OS page cache and a scheduler (the server's event loop) must
    call {!sync_wal} before acknowledging; see {!wal_unsynced}. *)

val load :
  ?page_size:int ->
  ?wal_path:string ->
  ?synchronous:bool ->
  ?ordered_on:Attribute.t ->
  order:Attribute.t list ->
  Relation.t ->
  t
(** Bulk-load a flat relation (canonicalized; not logged — a bulk load
    is its own checkpoint). *)

val recover :
  ?page_size:int ->
  ?synchronous:bool ->
  ?ordered_on:Attribute.t ->
  ?durable:(int -> bool) ->
  wal_path:string ->
  order:Attribute.t list ->
  Schema.t ->
  t
(** Rebuild by replaying the WAL from an empty table.

    [durable] is the global-commit-manifest check: when given, every
    per-table [Txn_commit] is treated as {e provisional} and its group
    only survives when [durable txid] holds — i.e. when the commit
    manifest carries a synced record for the transaction. Build it
    from {!Manifest.durable} so a crash between one table's commit
    append and the manifest sync rolls the transaction back in {e
    every} participating table, not just the ones whose commit record
    was lost. Without [durable] the per-table commit record remains
    the commit point (pre-manifest behaviour).
    @raise Storage_error.Error on mid-log corruption or a delete of an
    absent tuple — use {!recover_salvage} to recover around damage. *)

(** What a salvage recovery found and did. *)
type recovery_report = {
  wal_salvage : Wal.salvage option;  (** [None] when no WAL was involved *)
  snapshot_status : [ `Loaded | `Absent | `Corrupt of string | `None_requested ];
  stale_wal : bool;
      (** the WAL predates the snapshot (crash between
          {!save_snapshot} and the checkpoint's truncation) and was
          skipped *)
  applied : int;  (** WAL entries applied *)
  skipped_ops : int;  (** WAL entries that could not be applied *)
  discarded_txn_ops : int;
      (** transactional ops whose commit never became durable (torn
          transaction, explicit abort, or a provisional commit with no
          manifest record) — rolled back by design, not loss, so they
          never degrade the table *)
  discarded_txns : (int * int) list;
      (** per-transaction breakdown of the {e crash} discards:
          [(txid, ops)] for every group rolled back because the log
          tore before its commit record or because its manifest record
          never synced. Explicit aborts are not listed — they are user
          rollback, not crash cost. Aggregating this field across a
          database's tables is the cross-table audit of what a crash
          rolled back where. *)
}

val recover_salvage :
  ?page_size:int ->
  ?synchronous:bool ->
  ?ordered_on:Attribute.t ->
  ?durable:(int -> bool) ->
  wal_path:string ->
  order:Attribute.t list ->
  Schema.t ->
  t * recovery_report
(** Like {!recover} but never raises on damage: mid-log corruption is
    skipped frame by frame ({!Wal.replay_salvage}) and inapplicable
    entries are counted rather than fatal. A lossy recovery leaves the
    table {!constructor-Degraded} (read-only); {!check_invariants}
    holds either way. *)

val health : t -> health

val check_invariants : t -> bool
(** Cross-layer audit: the canonical store, the rid map, the heap
    records, the postings index and the B+-tree all describe the same
    relation (every live NFR tuple decodes from its heap record, is
    indexed under each of its component values, and is absent from the
    tombstone set; B+-tree structural invariants hold). *)

val close : t -> unit

val schema : t -> Schema.t
val nest_order : t -> Attribute.t list
val ordered_attribute : t -> Attribute.t option
(** The attribute carrying the B+-tree, if any. *)

val posting_size : t -> Attribute.t -> Value.t -> int
(** Selectivity statistic: how many heap records (live or tombstoned)
    the inverted index lists for this (attribute, value). Free of
    charge — used by the physical planner to rank candidate probes. *)

val insert : t -> Tuple.t -> bool
(** Logs, updates the canonical store, mirrors the journal onto the
    heap/index, and commits (advancing {!commit_seq}). [false] (and no
    log entry) on duplicates.
    @raise Storage_error.Error [(Degraded _)] when the table is (or
    this call's durability failure leaves it) degraded; the logical
    and physical layers are untouched in that case.
    @raise Invalid_argument while a storage transaction is open. *)

val delete : t -> Tuple.t -> unit
(** @raise Update.Not_in_relation when absent (nothing is logged).
    @raise Storage_error.Error [(Degraded _)] as for {!insert}.
    @raise Invalid_argument while a storage transaction is open. *)

(** {2 Storage-level transactions}

    The atomic unit under the executor's MVCC layer: ops between
    {!begin_txn} and {!commit_txn} are logged as txn records
    ([Txn_begin] .. [Txn_insert]/[Txn_delete] .. [Txn_commit]) and
    replayed all-or-nothing by recovery — a log that ends before the
    commit record (crash mid-transaction) has the whole group
    discarded, and an explicit {!abort_txn} both undoes the in-memory
    effects (journal inversion) and logs [Txn_abort]. One storage
    transaction may be open per table at a time; autocommit
    {!insert}/{!delete} are rejected while it is. Each committed op —
    autocommit or transactional — stamps the NFR images it creates
    with the commit sequence, and the flat tuples it wrote are
    remembered in a ledger so {!modified_since} can answer
    first-committer-wins visibility checks. The ledger grows with
    every commit; an MVCC layer on top should {!prune_ledger} below
    the oldest live snapshot it still tracks. *)

val commit_seq : t -> int
(** Number of commits applied to this table instance (bulk loads count
    as commit 1). *)

val in_txn : t -> bool

val version_of : t -> Ntuple.t -> int option
(** The commit sequence stamped on a live NFR image, [None] when the
    tuple is not live. *)

val modified_since : t -> seq:int -> Tuple.t -> bool
(** Has any commit after [seq] written (inserted or deleted) this flat
    tuple? The first-committer-wins check: a transaction whose
    snapshot was taken at [seq] must abort if a tuple it wrote
    satisfies this. One hash probe — the ledger is indexed by tuple,
    so a COMMIT validates in O(writes), independent of how many other
    commits the ledger still retains. *)

val prune_ledger : t -> below:int -> unit
(** Drop ledger entries at or below [below] — safe once no live
    snapshot is older than that sequence. *)

val ledger_size : t -> int
(** Number of retained [(tuple, commit seq)] ledger entries. O(1). *)

val begin_txn : t -> txid:int -> unit
(** Log [Txn_begin] and open the storage transaction.
    @raise Invalid_argument when one is already open.
    @raise Storage_error.Error [(Degraded _)] as for {!insert}. *)

val txn_insert : t -> txid:int -> Tuple.t -> bool
(** {!insert} within the open transaction: logged as [Txn_insert],
    applied immediately, undone by {!abort_txn} or a commit-less log.
    @raise Invalid_argument when transaction [txid] is not open. *)

val txn_delete : t -> txid:int -> Tuple.t -> unit
(** @raise Update.Not_in_relation when absent (nothing is logged). *)

val commit_txn : t -> txid:int -> int
(** Log [Txn_commit], advance and return {!commit_seq}, and enter the
    transaction's writes into the ledger. On a standalone table this
    makes the group durable: recovery replays it atomically. Under a
    global commit manifest the record is only {e provisional} — the
    transaction is durable once its {!Manifest.append} record syncs,
    and recovery with a [durable] check discards provisional commits
    the manifest never acknowledged. *)

val abort_txn : t -> txid:int -> unit
(** Undo every applied op (inverted journals, applied newest-first),
    close the transaction and log [Txn_abort]. The in-memory layers
    are restored even when logging the abort record fails (the table
    degrades; recovery discards the commit-less tail regardless). *)

val member : t -> Tuple.t -> bool
val snapshot : t -> Nfr.t
val cardinality : t -> int
(** Current number of NFR tuples. *)

val fact_count : t -> int
(** Number of flat facts ([R*] cardinality). *)

val lookup : t -> stats:Stats.t -> Attribute.t -> Value.t -> Ntuple.t list
(** Indexed containment lookup against the physical store (tombstoned
    records are skipped but charged as index probes). *)

val scan : t -> stats:Stats.t -> (Ntuple.t -> unit) -> unit
(** Full heap scan over live records. *)

val range : t -> stats:Stats.t -> lo:Value.t -> hi:Value.t -> Ntuple.t list
(** NFR tuples whose ordered component holds a value in
    [\[lo, hi\]], each returned once, via the B+-tree.
    @raise Invalid_argument when the table has no ordered index. *)

(** {2 Pull-based cursors}

    Each cursor is a [unit -> Ntuple.t option] thunk returning the
    next live tuple (or [None] when exhausted), charging the given
    stats exactly as the materializing variant would — but one tuple
    per pull, so a pipelined consumer holds O(1) decoded tuples. The
    table must not be mutated while a cursor is live. *)

val scan_cursor : t -> stats:Stats.t -> unit -> Ntuple.t option
(** Streaming {!scan}. *)

val lookup_cursor :
  t -> stats:Stats.t -> Attribute.t -> Value.t -> unit -> Ntuple.t option
(** Streaming {!lookup}: the index probe happens at creation, heap
    fetches and decoding happen lazily per pull. *)

val range_cursor :
  t ->
  stats:Stats.t ->
  ?lo:Value.t ->
  ?hi:Value.t ->
  ?lo_incl:bool ->
  ?hi_incl:bool ->
  unit ->
  unit ->
  Ntuple.t option
(** Streaming {!range}, with either bound optional (open-ended
    one-sided ranges walk the leaf chain from the leftmost leaf or to
    its end) and either bound strict when its [_incl] flag is [false]
    (the boundary group is skipped in the B+-tree, never fetched).
    Each matching tuple is returned once.
    @raise Invalid_argument when the table has no ordered index. *)

val live_records : t -> int
val dead_records : t -> int
val pages : t -> int

val pool : t -> Bufpool.t
(** The heap's buffer pool (reset when {!compact} rebuilds the heap). *)

val pool_hit_rate : t -> float
(** Observed buffer-pool hit rate of this table's heap — the planner
    prices repeated index probes below a cold scan with it. *)

(** {2 Group commit} *)

val sync_wal : t -> unit
(** Fsync the table's WAL ({!Wal.sync}); a no-op without a WAL or when
    nothing is pending. The group-commit barrier: once this returns,
    every previously appended entry is durable and the deferred
    acknowledgements it covers may be released.
    @raise Storage_error.Error [(Degraded _)] on an fsync failure (the
    table degrades, exactly as for a failed append). *)

val wal_unsynced : t -> int
(** Bytes appended to the WAL but not yet covered by a sync; 0 without
    a WAL. What the group-commit scheduler polls to find dirty logs. *)

val compact : t -> unit
(** Rebuild heap and index from the live snapshot, dropping
    tombstones. *)

val checkpoint : t -> unit
(** {!compact} and truncate the WAL (bumping its generation). Pair
    with {!save_snapshot} first — after a checkpoint the WAL alone
    replays to an empty table. A crash between the two is safe: the
    snapshot records the pre-truncation generation, so recovery
    recognizes the old log as stale instead of double-applying it. *)

val save_snapshot : t -> string -> unit
(** Serialize schema, nest order and every NFR tuple to a file
    (binary, via {!Codec}), atomically: the bytes (with a magic header
    and CRC-32 trailer) go to [path ^ ".tmp"] and are renamed into
    place, so a crash mid-save leaves any previous snapshot intact. *)

val load_snapshot :
  ?page_size:int ->
  ?wal_path:string ->
  ?synchronous:bool ->
  ?ordered_on:Attribute.t ->
  ?durable:(int -> bool) ->
  string ->
  t
(** Rebuild a table from {!save_snapshot} output, then replay
    [wal_path] (if given) on top — the full recovery story: snapshot
    at the last checkpoint + the log since. A WAL whose generation is
    at or below the snapshot's is stale (already folded in) and is
    skipped. Legacy un-checksummed snapshots still load.
    @raise Storage_error.Error on a torn, bit-flipped or otherwise
    malformed snapshot, or on an inapplicable WAL entry. *)

val load_snapshot_salvage :
  ?page_size:int ->
  ?wal_path:string ->
  ?synchronous:bool ->
  ?ordered_on:Attribute.t ->
  ?durable:(int -> bool) ->
  string ->
  t * recovery_report
(** Best-effort {!load_snapshot}: a corrupt or missing snapshot is
    reported (not raised) and recovery falls back to an empty
    placeholder table — check [snapshot_status] and rerun
    {!recover_salvage} with the authoritative schema in that case;
    WAL damage and inapplicable entries are skipped and counted as in
    {!recover_salvage}. *)
