(** An in-memory B+-tree over atomic values.

    The ordered companion to {!Index}'s hash postings: supports point
    and {e range} lookups over one attribute, mapping each key to the
    rids whose component contains it. Interior nodes hold separators,
    leaves hold (key, postings) pairs and are chained for in-order
    scans — the textbook structure, sized by [fanout].

    Deletion is by tombstone (empty posting lists are pruned from
    leaves but nodes are not rebalanced); {!of_seq} bulk-loads
    bottom-up. This mirrors how the rest of the storage layer trades
    durability realism for measurability. *)

open Relational

type t

val create : ?fanout:int -> unit -> t
(** [fanout] is the maximum number of children per interior node
    (default 16; minimum 4). *)

val insert : t -> Value.t -> Heap.rid -> unit
(** Add a posting under the key (duplicates per key allowed). *)

val remove : t -> Value.t -> Heap.rid -> unit
(** Remove one posting; a no-op when absent. *)

val lookup : t -> stats:Stats.t -> Value.t -> Heap.rid list
(** Postings for an exact key, charging one probe. *)

val range : t -> stats:Stats.t -> lo:Value.t -> hi:Value.t -> (Value.t * Heap.rid list) list
(** All keys with [lo <= key <= hi], ascending, one probe charged per
    visited leaf. *)

val range_open :
  t ->
  stats:Stats.t ->
  ?lo:Value.t ->
  ?hi:Value.t ->
  ?lo_incl:bool ->
  ?hi_incl:bool ->
  unit ->
  (Value.t * Heap.rid list) list
(** {!range} with either bound optional: a missing [lo] starts at the
    leftmost leaf, a missing [hi] walks the leaf chain to its end —
    the open-ended ranges one-sided comparisons compile to.
    [lo_incl]/[hi_incl] (default [true]) make a present bound strict
    when [false]: the boundary key's postings are excluded, so strict
    comparisons ([x > 5]) never charge the boundary group's pages. *)

val keys : t -> Value.t list
(** All keys in ascending order. *)

val cardinal : t -> int
(** Number of distinct keys. *)

val depth : t -> int

val check_invariants : t -> bool
(** Structural sanity: sorted keys, separator correctness, leaf chain
    order, node occupancy. Used by the test suite. *)
