(** Deterministic fault injection for the storage stack.

    A registry of named failure {e sites} threaded through {!Wal}
    appends, {!Table} snapshot writes and {!Engine} loads. A test arms
    a site with a {!fault}; when execution reaches that site the fault
    fires exactly once (optionally after skipping a number of hits),
    simulating the failure mode at precisely that point:

    - {!constructor-Crash} — the process "dies" at the site:
      {!exception-Crashed} is raised and nothing past the site runs.
      The harness catches it, drops the live handles, and recovers
      from disk — the crash-consistency test.
    - {!constructor-Short_write} — only a prefix of the data reaches
      the file, then the process dies (a torn write).
    - {!constructor-Bit_flip} — one bit of the data is silently
      flipped before it is written (media corruption); execution
      continues normally.
    - {!constructor-Drop_write} — the write is silently lost (a flush
      that never reached the platter); execution continues normally.

    Everything is deterministic: faults fire on exact hit counts, and
    {!plan} derives (site, fault) schedules from an explicit seed, so
    a failing crash-matrix cell reproduces byte-for-byte.

    The registry is global mutable state, intended for single-threaded
    test harnesses; {!reset} restores the no-faults state. When
    nothing is armed every site is a no-op (one hashtable miss), so
    production paths pay essentially nothing. *)

type fault =
  | Crash
  | Short_write of int  (** keep only the first [n] bytes, then crash *)
  | Bit_flip of int  (** flip bit [n mod (8 * length)] of the data *)
  | Drop_write
  | Lose_unsynced
      (** power loss at a sync site: every byte that reached only the
          OS page cache (appended but not yet fsynced) vanishes, then
          the process dies. Only meaningful at [`Sync] sites. *)

exception Crashed of string  (** The site whose {!constructor-Crash} fired. *)

type site_kind =
  [ `Control  (** a pure control-flow point: only {!constructor-Crash} applies *)
  | `Write  (** a data write: every fault applies *)
  | `Sync  (** a durability barrier: {!constructor-Crash} and
               {!constructor-Lose_unsynced} apply *) ]

val sites : (string * site_kind) list
(** Every site the storage stack declares, in instrumentation order:
    ["wal.append.before"], ["wal.append.frame"], ["wal.append.after"],
    ["wal.sync.before"], ["wal.sync.after"], ["wal.reset"],
    ["snapshot.body"], ["snapshot.rename"], ["engine.load.record"],
    ["txn.commit.table"] (before each table's provisional commit
    append in a multi-table commit), ["manifest.append.before"]
    (between the last table's append and the manifest record).
    The crash-matrix soak enumerates this list; adding an
    instrumentation point means adding it here. *)

val faults_for : site_kind -> fault list
(** The canonical fault set to exercise at a site of this kind (small
    representative parameters for the sized faults). *)

val arm : ?after:int -> string -> fault -> unit
(** [arm ~after site fault] — the fault fires on the [(after+1)]-th
    hit of [site] (default: the next hit), then disarms itself.
    Re-arming a site replaces its pending fault. *)

val disarm : string -> unit

val reset : unit -> unit
(** Disarm everything and zero all hit/fired counters. *)

val hit : string -> unit
(** Control-flow site. Raises {!exception-Crashed} when an armed
    {!constructor-Crash} fires here; data faults at a control site
    fire (they are recorded) but have no effect. *)

(** What a data write site should do with the buffer. *)
type write_effect =
  | Full of string  (** write this (possibly bit-flipped) data *)
  | Partial of string  (** write this prefix, then raise {!exception-Crashed} *)
  | Dropped  (** write nothing; pretend success *)

val on_write : string -> string -> write_effect
(** [on_write site data] — the armed fault's transformation of [data],
    or [Full data] when nothing fires. *)

(** What a durability barrier should do. *)
type sync_effect =
  | Proceed  (** fsync normally *)
  | Power_cut
      (** the machine lost power before the fsync landed: the caller
          must discard everything past its durable watermark, then
          raise {!exception-Crashed} *)

val on_sync : string -> sync_effect
(** [on_sync site] — the armed fault's verdict at a sync barrier.
    Raises {!exception-Crashed} directly for an armed
    {!constructor-Crash}; returns {!constructor-Power_cut} for
    {!constructor-Lose_unsynced}; other faults are recorded but
    proceed. *)

val hits : string -> int
(** How many times the site has been reached since {!reset}. *)

val fired : unit -> (string * fault) list
(** Faults that actually fired since {!reset}, oldest first. The
    crash matrix asserts its armed fault is in this list — a renamed
    or unreachable site fails loudly instead of passing vacuously. *)

val plan : seed:int -> int -> (string * fault) list
(** [plan ~seed n] — [n] deterministic (site, fault) pairs drawn from
    {!sites} with kind-appropriate faults; equal seeds give equal
    plans. *)

val with_faults : (string * fault) list -> (unit -> 'a) -> 'a
(** Arm each pair, run the thunk, and {!reset} afterwards even on
    exceptions. *)
