type fault =
  | Crash
  | Short_write of int
  | Bit_flip of int
  | Drop_write
  | Lose_unsynced

exception Crashed of string

type site_kind = [ `Control | `Write | `Sync ]

let sites =
  [
    ("wal.append.before", `Control);
    ("wal.append.frame", `Write);
    ("wal.append.after", `Control);
    ("wal.sync.before", `Sync);
    ("wal.sync.after", `Control);
    ("wal.reset", `Control);
    ("snapshot.body", `Write);
    ("snapshot.rename", `Control);
    ("engine.load.record", `Write);
    (* Cross-table commit windows: between one table's provisional
       commit append and the next's, and between the last table's
       append and the manifest record. *)
    ("txn.commit.table", `Control);
    ("manifest.append.before", `Control);
  ]

let faults_for = function
  | `Control -> [ Crash ]
  | `Write -> [ Crash; Short_write 3; Bit_flip 13; Drop_write ]
  | `Sync -> [ Crash; Lose_unsynced ]

type armed = {
  fault : fault;
  mutable countdown : int;  (* hits to let through before firing *)
}

let armed_table : (string, armed) Hashtbl.t = Hashtbl.create 8
let hit_counts : (string, int ref) Hashtbl.t = Hashtbl.create 8
let fired_log : (string * fault) list ref = ref []

let arm ?(after = 0) site fault = Hashtbl.replace armed_table site { fault; countdown = after }
let disarm site = Hashtbl.remove armed_table site

let reset () =
  Hashtbl.reset armed_table;
  Hashtbl.reset hit_counts;
  fired_log := []

let note_hit site =
  match Hashtbl.find_opt hit_counts site with
  | Some count -> incr count
  | None -> Hashtbl.replace hit_counts site (ref 1)

let hits site =
  match Hashtbl.find_opt hit_counts site with Some count -> !count | None -> 0

let fired () = List.rev !fired_log

(* The fault due at this hit, if any; one-shot. *)
let trigger site =
  match Hashtbl.find_opt armed_table site with
  | None -> None
  | Some armed ->
    if armed.countdown > 0 then begin
      armed.countdown <- armed.countdown - 1;
      None
    end
    else begin
      Hashtbl.remove armed_table site;
      fired_log := (site, armed.fault) :: !fired_log;
      Obs.Registry.incr_labeled Obs.Registry.global "failpoints.tripped"
        [ ("site", site) ];
      Some armed.fault
    end

let hit site =
  note_hit site;
  match trigger site with
  | Some Crash -> raise (Crashed site)
  | Some (Short_write _ | Bit_flip _ | Drop_write | Lose_unsynced) | None -> ()

type sync_effect =
  | Proceed
  | Power_cut

let on_sync site =
  note_hit site;
  match trigger site with
  | Some Crash -> raise (Crashed site)
  | Some Lose_unsynced -> Power_cut
  | Some (Short_write _ | Bit_flip _ | Drop_write) | None -> Proceed

type write_effect =
  | Full of string
  | Partial of string
  | Dropped

let on_write site data =
  note_hit site;
  match trigger site with
  | None -> Full data
  | Some Crash -> Partial ""
  (* A power cut at a plain write site behaves like a crash with the
     write lost: nothing of this frame reaches the file. *)
  | Some Lose_unsynced -> Partial ""
  | Some (Short_write n) -> Partial (String.sub data 0 (min (max n 0) (String.length data)))
  | Some Drop_write -> Dropped
  | Some (Bit_flip n) ->
    if String.length data = 0 then Full data
    else begin
      let bytes = Bytes.of_string data in
      let bit = abs n mod (8 * Bytes.length bytes) in
      let index = bit / 8 in
      Bytes.set bytes index
        (Char.chr (Char.code (Bytes.get bytes index) lxor (1 lsl (bit mod 8))));
      Full (Bytes.unsafe_to_string bytes)
    end

(* A tiny SplitMix64 step, so plans need no dependency on Workload. *)
let plan ~seed n =
  let state = ref (Int64.of_int seed) in
  let next () =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.to_int (Int64.logand (Int64.logxor z (Int64.shift_right_logical z 31)) 0x3FFFFFFFL)
  in
  let site_array = Array.of_list sites in
  List.init n (fun _ ->
      let site, kind = site_array.(next () mod Array.length site_array) in
      let faults = Array.of_list (faults_for kind) in
      (site, faults.(next () mod Array.length faults)))

let with_faults pairs f =
  reset ();
  List.iter (fun (site, fault) -> arm site fault) pairs;
  Fun.protect ~finally:reset f
