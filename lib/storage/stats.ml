type t = {
  mutable pages_read : int;
  mutable records_read : int;
  mutable bytes_read : int;
  mutable index_probes : int;
}

let create () =
  { pages_read = 0; records_read = 0; bytes_read = 0; index_probes = 0 }

let reset t =
  t.pages_read <- 0;
  t.records_read <- 0;
  t.bytes_read <- 0;
  t.index_probes <- 0

let add acc s =
  acc.pages_read <- acc.pages_read + s.pages_read;
  acc.records_read <- acc.records_read + s.records_read;
  acc.bytes_read <- acc.bytes_read + s.bytes_read;
  acc.index_probes <- acc.index_probes + s.index_probes

let pp ppf t =
  Format.fprintf ppf "pages=%d records=%d bytes=%d probes=%d" t.pages_read
    t.records_read t.bytes_read t.index_probes

let to_json t =
  Printf.sprintf
    "{\"pages_read\":%d,\"records_read\":%d,\"bytes_read\":%d,\"index_probes\":%d}"
    t.pages_read t.records_read t.bytes_read t.index_probes
