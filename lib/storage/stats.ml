type t = {
  mutable pages_read : int;
  mutable records_read : int;
  mutable bytes_read : int;
  mutable index_probes : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
}

let create () =
  {
    pages_read = 0;
    records_read = 0;
    bytes_read = 0;
    index_probes = 0;
    pool_hits = 0;
    pool_misses = 0;
  }

let reset t =
  t.pages_read <- 0;
  t.records_read <- 0;
  t.bytes_read <- 0;
  t.index_probes <- 0;
  t.pool_hits <- 0;
  t.pool_misses <- 0

let add acc s =
  acc.pages_read <- acc.pages_read + s.pages_read;
  acc.records_read <- acc.records_read + s.records_read;
  acc.bytes_read <- acc.bytes_read + s.bytes_read;
  acc.index_probes <- acc.index_probes + s.index_probes;
  acc.pool_hits <- acc.pool_hits + s.pool_hits;
  acc.pool_misses <- acc.pool_misses + s.pool_misses

let pp ppf t =
  Format.fprintf ppf "pages=%d records=%d bytes=%d probes=%d pool=%d/%d"
    t.pages_read t.records_read t.bytes_read t.index_probes t.pool_hits
    t.pool_misses

let to_json t =
  Printf.sprintf
    "{\"pages_read\":%d,\"records_read\":%d,\"bytes_read\":%d,\"index_probes\":%d,\"pool_hits\":%d,\"pool_misses\":%d}"
    t.pages_read t.records_read t.bytes_read t.index_probes t.pool_hits
    t.pool_misses
