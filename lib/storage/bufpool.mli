(** Fixed-capacity LRU buffer pool fronting heap page access.

    Tracks which pages of a heap would be resident in a bounded cache:
    every page charge {!touch}es the pool (hit if resident, miss
    admits and may evict the least-recently-used page), and sequential
    scans {!prefetch} their successor page. The observed {!hit_rate}
    feeds the planner's pricing of repeated index probes.

    Counters are mirrored into {!Obs.Registry.global} as [pool.hit],
    [pool.miss] and [pool.evict]. *)

type t

val default_capacity : int
(** 64 pages. *)

val create : ?capacity:int -> unit -> t
(** [capacity] is clamped to at least 1. *)

val capacity : t -> int

val length : t -> int
(** Pages currently resident; never exceeds {!capacity}. *)

val touch : t -> int -> bool
(** [touch t page_no] records an access: [true] on hit (the page is
    moved to the MRU end), [false] on miss (the page is admitted,
    evicting the LRU page if the pool is full). *)

val prefetch : t -> int -> unit
(** Admit a page ahead of its access without charging the hit/miss
    ledger — what a sequential scan does for its successor page. May
    evict. *)

val contains : t -> int -> bool

val hits : t -> int
val misses : t -> int
val evictions : t -> int

val hit_rate : t -> float
(** hits / (hits + misses); 0 before any access. *)

val clear : t -> unit
(** Drop every resident page; counters are kept. *)

val cached_pages : t -> int list
(** Resident page numbers, LRU first. *)
