type rid = {
  page_no : int;
  slot : int;
}

type t = {
  mutable pages : Page.t array;  (* grows; last page is the open one *)
  mutable records : int;
  page_size : int;
}

let create ?(page_size = Page.default_size) () =
  { pages = [| Page.create ~size:page_size () |]; records = 0; page_size }

let current_page t = t.pages.(Array.length t.pages - 1)

let open_new_page t =
  let page = Page.create ~size:t.page_size () in
  t.pages <- Array.append t.pages [| page |];
  page

let append t record =
  let page, page_no =
    match Page.append (current_page t) record with
    | Some slot -> (Some slot, Array.length t.pages - 1)
    | None -> (None, 0)
  in
  match page with
  | Some slot ->
    t.records <- t.records + 1;
    { page_no; slot }
  | None ->
    let fresh = open_new_page t in
    (match Page.append fresh record with
    | Some slot ->
      t.records <- t.records + 1;
      { page_no = Array.length t.pages - 1; slot }
    | None ->
      invalid_arg
        (Printf.sprintf "Heap.append: record of %d bytes exceeds page size %d"
           (String.length record) t.page_size))

let get t rid =
  if rid.page_no < 0 || rid.page_no >= Array.length t.pages then
    invalid_arg "Heap.get: bad page number";
  Page.get t.pages.(rid.page_no) rid.slot

let page_count t = Array.length t.pages
let record_count t = t.records
let total_bytes t = Array.fold_left (fun acc page -> acc + Page.size page) 0 t.pages

let scan t ~stats f =
  Array.iteri
    (fun page_no page ->
      stats.Stats.pages_read <- stats.Stats.pages_read + 1;
      Page.iter
        (fun slot record ->
          stats.Stats.records_read <- stats.Stats.records_read + 1;
          stats.Stats.bytes_read <- stats.Stats.bytes_read + String.length record;
          f { page_no; slot } record)
        page)
    t.pages

let cursor t ~stats =
  let page_no = ref 0 in
  let slot = ref 0 in
  let page_charged = ref false in
  let rec next () =
    if !page_no >= Array.length t.pages then None
    else begin
      let page = t.pages.(!page_no) in
      if not !page_charged then begin
        stats.Stats.pages_read <- stats.Stats.pages_read + 1;
        page_charged := true
      end;
      if !slot >= Page.record_count page then begin
        incr page_no;
        slot := 0;
        page_charged := false;
        next ()
      end
      else begin
        let record = Page.get page !slot in
        let rid = { page_no = !page_no; slot = !slot } in
        incr slot;
        stats.Stats.records_read <- stats.Stats.records_read + 1;
        stats.Stats.bytes_read <- stats.Stats.bytes_read + String.length record;
        Some (rid, record)
      end
    end
  in
  next

let fetch t ~stats rid =
  let record = get t rid in
  stats.Stats.pages_read <- stats.Stats.pages_read + 1;
  stats.Stats.records_read <- stats.Stats.records_read + 1;
  stats.Stats.bytes_read <- stats.Stats.bytes_read + String.length record;
  record
