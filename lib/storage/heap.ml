type rid = {
  page_no : int;
  slot : int;
}

(* The page table grows by amortized doubling: [pages] is the backing
   array and [live] the watermark of pages actually in use (the last
   live page is the open one). The previous Array.append-per-page
   scheme copied the whole table on every new page, O(p^2) total. *)
type t = {
  mutable pages : Page.t array;
  mutable live : int;
  mutable records : int;
  page_size : int;
  pool : Bufpool.t;
}

let create ?(page_size = Page.default_size) ?pool_capacity () =
  {
    pages = [| Page.create ~size:page_size () |];
    live = 1;
    records = 0;
    page_size;
    pool = Bufpool.create ?capacity:pool_capacity ();
  }

let pool t = t.pool

(* Every page charge is exactly one pool touch, so over any workload
   pool hits + pool misses = pages_read. *)
let charge_page t ~stats page_no =
  stats.Stats.pages_read <- stats.Stats.pages_read + 1;
  if Bufpool.touch t.pool page_no then
    stats.Stats.pool_hits <- stats.Stats.pool_hits + 1
  else stats.Stats.pool_misses <- stats.Stats.pool_misses + 1

let current_page t = t.pages.(t.live - 1)

let open_new_page t =
  let page = Page.create ~size:t.page_size () in
  if t.live >= Array.length t.pages then begin
    let bigger = Array.make (2 * Array.length t.pages) page in
    Array.blit t.pages 0 bigger 0 t.live;
    t.pages <- bigger
  end;
  t.pages.(t.live) <- page;
  t.live <- t.live + 1;
  page

let append t record =
  let page, page_no =
    match Page.append (current_page t) record with
    | Some slot -> (Some slot, t.live - 1)
    | None -> (None, 0)
  in
  match page with
  | Some slot ->
    t.records <- t.records + 1;
    { page_no; slot }
  | None ->
    let fresh = open_new_page t in
    (match Page.append fresh record with
    | Some slot ->
      t.records <- t.records + 1;
      { page_no = t.live - 1; slot }
    | None ->
      invalid_arg
        (Printf.sprintf "Heap.append: record of %d bytes exceeds page size %d"
           (String.length record) t.page_size))

let get t rid =
  if rid.page_no < 0 || rid.page_no >= t.live then
    invalid_arg "Heap.get: bad page number";
  Page.get t.pages.(rid.page_no) rid.slot

let page_count t = t.live
let record_count t = t.records

let total_bytes t =
  let sum = ref 0 in
  for i = 0 to t.live - 1 do
    sum := !sum + Page.size t.pages.(i)
  done;
  !sum

let scan t ~stats f =
  for page_no = 0 to t.live - 1 do
    let page = t.pages.(page_no) in
    charge_page t ~stats page_no;
    (* Sequential prefetch: the successor page is admitted before the
       scan reaches it, so steady-state scanning hits the pool. *)
    if page_no + 1 < t.live then Bufpool.prefetch t.pool (page_no + 1);
    Page.iter
      (fun slot record ->
        stats.Stats.records_read <- stats.Stats.records_read + 1;
        stats.Stats.bytes_read <- stats.Stats.bytes_read + String.length record;
        f { page_no; slot } record)
      page
  done

let cursor t ~stats =
  let page_no = ref 0 in
  let slot = ref 0 in
  let page_charged = ref false in
  let rec next () =
    if !page_no >= t.live then None
    else begin
      let page = t.pages.(!page_no) in
      if not !page_charged then begin
        charge_page t ~stats !page_no;
        if !page_no + 1 < t.live then Bufpool.prefetch t.pool (!page_no + 1);
        page_charged := true
      end;
      if !slot >= Page.record_count page then begin
        incr page_no;
        slot := 0;
        page_charged := false;
        next ()
      end
      else begin
        let record = Page.get page !slot in
        let rid = { page_no = !page_no; slot = !slot } in
        incr slot;
        stats.Stats.records_read <- stats.Stats.records_read + 1;
        stats.Stats.bytes_read <- stats.Stats.bytes_read + String.length record;
        Some (rid, record)
      end
    end
  in
  next

let fetch t ~stats rid =
  let record = get t rid in
  charge_page t ~stats rid.page_no;
  stats.Stats.records_read <- stats.Stats.records_read + 1;
  stats.Stats.bytes_read <- stats.Stats.bytes_read + String.length record;
  record
