(** Binary encoding of values, tuples and NFR tuples.

    The paper's "realization view" argument is that an NFR is smaller
    {e physically} than its 1NF expansion; this codec makes that
    measurable in bytes. Encoding is length-prefixed (LEB128 varints)
    and self-describing per value, so heap pages can hold mixed
    schemas. *)

open Relational
open Nfr_core

val encode_varint : Buffer.t -> int -> unit
(** Unsigned LEB128. @raise Invalid_argument on negative input. *)

val decode_varint : bytes -> int -> int * int
(** [decode_varint b off] is [(value, next_offset)].
    @raise Storage_error.Error on truncated or overlong input.

    All decoders below raise {!Storage_error.Error} (never a bare
    [Failure]) on malformed input, and bound every decoded count by
    the bytes remaining — a bit-flipped length cannot trigger a giant
    or negative allocation. *)

val encode_value : Buffer.t -> Value.t -> unit
val decode_value : bytes -> int -> Value.t * int

val encode_tuple : Buffer.t -> Tuple.t -> unit
val decode_tuple : bytes -> int -> Tuple.t * int

val encode_ntuple : Buffer.t -> Ntuple.t -> unit
val decode_ntuple : bytes -> int -> Ntuple.t * int

val tuple_size : Tuple.t -> int
(** Encoded size in bytes (without encoding twice at use sites is not
    attempted — this simply measures a throwaway buffer). *)

val ntuple_size : Ntuple.t -> int

val relation_size : Relation.t -> int
(** Total encoded size of all tuples. *)

val nfr_size : Nfr.t -> int
