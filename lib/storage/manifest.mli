(** The global commit manifest — the single commit point for
    multi-table transactions.

    Per-table WALs hold each transaction's ops and a {e provisional}
    [Txn_commit]; this log (conventionally [_commit.wal], reusing the
    {!Wal} v1 framing, CRC and torn-tail salvage) holds one
    {!Wal.Manifest_commit} record per transaction that actually
    committed, in commit order. A transaction is durable iff its
    manifest record is synced.

    The durability order at every commit is: participating table WALs
    first, manifest last, acknowledgement after the manifest sync. A
    crash anywhere before the manifest sync therefore loses (at most)
    the manifest record, and recovery — {!Table.recover} and friends
    with a [durable] check built from {!durable} — rolls the
    transaction back in {e every} table it touched. All-or-nothing
    across tables, with the rollbacks reported per table in
    {!Table.recovery_report}[.discarded_txns].

    The manifest is also the totally-ordered commit stream that WAL
    shipping replays to read replicas. *)

type t

val open_log : string -> t
(** Open (creating if absent), salvaging existing records — a torn
    tail is trimmed exactly as {!Wal.open_log} does. Every surviving
    record is loaded into the in-memory durable set. *)

val append : t -> txid:int -> tables:(string * int) list -> unit
(** Append the manifest record for [txid], naming each participating
    table and the commit sequence its group claimed there. Buffered
    ({!Wal.append} semantics): not durable until {!sync}. Must be
    called {e after} every participating table's provisional
    [Txn_commit] append. Hits the ["manifest.append.before"]
    failpoint. *)

val sync : t -> unit
(** The transaction durability barrier ({!Wal.sync}): fsync the
    manifest. In a group-commit server this runs once per tick, after
    the table WAL syncs it covers. *)

val unsynced_bytes : t -> int

val close : t -> unit

val truncate : t -> unit
(** Reset after a full-database checkpoint. Only safe once {e every}
    table's WAL has been truncated past the recorded transactions —
    a manifest truncated while some table still replays provisional
    commits would roll those commits back. *)

val durable : t -> int -> bool
(** Is there a manifest record for this txid? The [?durable] check to
    pass to {!Table.recover}/{!Table.recover_salvage}/
    {!Table.load_snapshot}/{!Table.load_snapshot_salvage}. *)

val tables_of : t -> int -> (string * int) list option
(** The participating (table, commit seq) pairs recorded for a txid. *)

val max_txid : t -> int
(** Largest txid with a manifest record (0 when empty). Restart
    txid allocation above this so a recycled txid can never match a
    stale manifest record. *)

val records : t -> (int * (string * int) list) list
(** Every record in manifest (commit) order. *)
