type t =
  | Corrupt of {
      context : string;
      offset : int;
      detail : string;
    }
  | Closed of string
  | Degraded of string

exception Error of t

let to_string = function
  | Corrupt { context; offset; detail } ->
    Printf.sprintf "%s: corrupt input at offset %d: %s" context offset detail
  | Closed operation -> Printf.sprintf "%s: handle is closed" operation
  | Degraded reason -> Printf.sprintf "table degraded (read-only): %s" reason

let corrupt ~context ~offset detail = raise (Error (Corrupt { context; offset; detail }))

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Storage_error.Error: " ^ to_string e)
    | _ -> None)
