(** Access-path counters.

    Every storage operation charges what it touched; the search-space
    experiment (E9) reports these instead of wall-clock time, matching
    the paper's "reduction of the logical search space" claim. *)

type t = {
  mutable pages_read : int;
  mutable records_read : int;
  mutable bytes_read : int;
  mutable index_probes : int;
  mutable pool_hits : int;
      (** pages found resident in the heap's buffer pool; every
          [pages_read] charge is exactly one pool hit or miss *)
  mutable pool_misses : int;
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc s] accumulates [s] into [acc]. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One flat JSON object ([{"pages_read":..,"records_read":..,
    "bytes_read":..,"index_probes":..}]) — the machine-readable form
    shared by EXPLAIN ANALYZE cost dumps, the server's METRICS frame
    and the network bench report. *)
