open Relational

type entry =
  | Insert of Tuple.t
  | Delete of Tuple.t
  | Txn_begin of int
  | Txn_insert of int * Tuple.t
  | Txn_delete of int * Tuple.t
  | Txn_commit of int
  | Txn_abort of int
  | View_def of { view : string; base : string; by : string list }
  | View_drop of string
  | Manifest_commit of { txid : int; tables : (string * int) list }

type format = V0 | V1

type t = {
  mutable channel : out_channel;
  mutable open_ : bool;
  mutable format : format;
  mutable generation : int;
  mutable written_bytes : int;
      (* bytes handed to the channel since open (header included) *)
  mutable synced_bytes : int;
      (* durable watermark: bytes covered by the last real fsync (or
         present at open, which only follows a flushed close/reset) *)
  path : string;
}

(* v1 on-disk layout:
     header  "NF2WALv1" (8 bytes) + varint generation
     frame   0xA7 marker + varint payload length + payload
             + CRC32(payload) little-endian (4 bytes)
   The generation increments on every truncation; snapshots record the
   generation they were cut against, which is what lets recovery tell
   a fresh post-checkpoint log from a stale pre-checkpoint one.

   v0 (legacy) has no header; frames are varint length + payload + a
   1-byte additive checksum. [replay] still reads it; [open_log] keeps
   appending v0 frames to a v0 file so one log never mixes formats. *)
let magic = "NF2WALv1"
let frame_marker = '\xA7'

let legacy_checksum payload =
  let total = ref 0 in
  String.iter (fun c -> total := (!total + Char.code c) land 0xFF) payload;
  !total

let encode_header generation =
  let buffer = Buffer.create 12 in
  Buffer.add_string buffer magic;
  Codec.encode_varint buffer generation;
  Buffer.contents buffer

(* (format, generation, offset of the first frame); [`Torn] when the
   file starts with the magic but the generation varint is cut off. *)
let parse_header bytes =
  let length = Bytes.length bytes in
  if length >= String.length magic && Bytes.sub_string bytes 0 (String.length magic) = magic
  then begin
    match Codec.decode_varint bytes (String.length magic) with
    | generation, offset -> `V1 (generation, offset)
    | exception Storage_error.Error _ -> `Torn
  end
  else `V0

let read_file path =
  let channel = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr channel)
    (fun () -> really_input_string channel (in_channel_length channel))

let generation t = t.generation

(* Catalog records carry names, which Codec has no codec for; a
   varint length prefix keeps them self-delimiting inside a frame. *)
let encode_string buffer s =
  Codec.encode_varint buffer (String.length s);
  Buffer.add_string buffer s

let decode_string bytes offset =
  let length, offset = Codec.decode_varint bytes offset in
  if length < 0 || offset + length > Bytes.length bytes then
    Storage_error.corrupt ~context:"Wal.decode_entry" ~offset
      "truncated string"
  else (Bytes.sub_string bytes offset length, offset + length)

(* Autocommit entries keep their original tags ('I'/'D') so every
   pre-transaction log replays unchanged. Transactional entries carry
   a varint txid after the tag; lowercase 'i'/'d' mirror their
   autocommit counterparts. 'V'/'W' are view-catalog records (define/
   drop); they carry no tuples and belong in a catalog log, not a
   table log. *)
let encode_entry entry =
  let buffer = Buffer.create 32 in
  (match entry with
  | Insert tuple ->
    Buffer.add_char buffer 'I';
    Codec.encode_tuple buffer tuple
  | Delete tuple ->
    Buffer.add_char buffer 'D';
    Codec.encode_tuple buffer tuple
  | Txn_begin txid ->
    Buffer.add_char buffer 'B';
    Codec.encode_varint buffer txid
  | Txn_insert (txid, tuple) ->
    Buffer.add_char buffer 'i';
    Codec.encode_varint buffer txid;
    Codec.encode_tuple buffer tuple
  | Txn_delete (txid, tuple) ->
    Buffer.add_char buffer 'd';
    Codec.encode_varint buffer txid;
    Codec.encode_tuple buffer tuple
  | Txn_commit txid ->
    Buffer.add_char buffer 'C';
    Codec.encode_varint buffer txid
  | Txn_abort txid ->
    Buffer.add_char buffer 'A';
    Codec.encode_varint buffer txid
  | View_def { view; base; by } ->
    Buffer.add_char buffer 'V';
    encode_string buffer view;
    encode_string buffer base;
    Codec.encode_varint buffer (List.length by);
    List.iter (encode_string buffer) by
  | View_drop view ->
    Buffer.add_char buffer 'W';
    encode_string buffer view
  | Manifest_commit { txid; tables } ->
    (* 'M' lives only in the global commit manifest (_commit.wal): one
       record per transaction naming every participating table and the
       commit sequence its group claimed there. A per-table Txn_commit
       without a matching manifest record is provisional, not durable. *)
    Buffer.add_char buffer 'M';
    Codec.encode_varint buffer txid;
    Codec.encode_varint buffer (List.length tables);
    List.iter
      (fun (table, seq) ->
        encode_string buffer table;
        Codec.encode_varint buffer seq)
      tables);
  Buffer.contents buffer

let add_le32 buffer n =
  for shift = 0 to 3 do
    Buffer.add_char buffer (Char.chr ((n lsr (shift * 8)) land 0xFF))
  done

let read_le32 bytes offset =
  let byte i = Char.code (Bytes.get bytes (offset + i)) in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

let frame_v1 payload =
  let framed = Buffer.create (String.length payload + 10) in
  Buffer.add_char framed frame_marker;
  Codec.encode_varint framed (String.length payload);
  Buffer.add_string framed payload;
  add_le32 framed (Crc32.digest payload);
  Buffer.contents framed

let frame_v0 payload =
  let framed = Buffer.create (String.length payload + 8) in
  Codec.encode_varint framed (String.length payload);
  Buffer.add_string framed payload;
  Buffer.add_char framed (Char.chr (legacy_checksum payload));
  Buffer.contents framed

(* Buffered append: the frame reaches the OS page cache (stdlib
   [flush]), NOT the platter. Durability requires a later [sync] —
   the flush-vs-fsync split is the whole point: acknowledgements must
   wait for [sync], while many appends can share one. *)
let append t entry =
  if not t.open_ then raise (Storage_error.Error (Storage_error.Closed "Wal.append"));
  Obs.Span.with_span Obs.Span.Wal_append "wal.append" (fun span ->
      Failpoint.hit "wal.append.before";
      let payload = encode_entry entry in
      let framed =
        match t.format with V1 -> frame_v1 payload | V0 -> frame_v0 payload
      in
      let registry = Obs.Registry.global in
      Obs.Registry.incr registry "wal.append_total";
      Obs.Registry.add registry "wal.bytes_total" (String.length framed);
      Obs.Registry.add_gauge registry "wal.bytes_unflushed"
        (float_of_int (String.length framed));
      Obs.Span.add_bytes span (String.length framed);
      (match Failpoint.on_write "wal.append.frame" framed with
      | Failpoint.Full data ->
        output_string t.channel data;
        t.written_bytes <- t.written_bytes + String.length data
      | Failpoint.Dropped -> ()
      | Failpoint.Partial prefix ->
        output_string t.channel prefix;
        t.written_bytes <- t.written_bytes + String.length prefix;
        flush t.channel;
        raise (Failpoint.Crashed "wal.append.frame"));
      Obs.Span.with_span Obs.Span.Wal_fsync "wal.flush" (fun flush_span ->
          flush t.channel;
          Obs.Registry.incr registry "wal.flush_total";
          (* Deprecated alias of wal.flush_total (this counter always
             measured the user-buffer flush); dashboards migrate to
             wal.flush_total / wal.sync_total. *)
          Obs.Registry.incr registry "wal.fsync_total";
          Obs.Registry.add_gauge registry "wal.bytes_unflushed"
            (-.float_of_int (String.length framed));
          Obs.Registry.add_gauge registry "wal.bytes_unsynced"
            (float_of_int (String.length framed));
          let elapsed = Obs.Span.now () -. flush_span.Obs.Span.start_s in
          Obs.Registry.observe registry "wal.flush.seconds" elapsed;
          Obs.Registry.observe registry "wal.fsync.seconds" elapsed);
      Failpoint.hit "wal.append.after")

let unsynced_bytes t = t.written_bytes - t.synced_bytes

(* The durability barrier: a real [Unix.fsync]. No-op when the
   watermark already covers every written byte, so idle group-commit
   ticks cost one integer compare. *)
let sync t =
  if not t.open_ then raise (Storage_error.Error (Storage_error.Closed "Wal.sync"));
  if t.written_bytes > t.synced_bytes then begin
    (match Failpoint.on_sync "wal.sync.before" with
    | Failpoint.Proceed -> ()
    | Failpoint.Power_cut ->
      (* Simulated power loss before the fsync lands: every byte that
         only reached the OS page cache vanishes. Push the user buffer
         out first so the truncation below is the only editor of the
         file, then cut back to the durable watermark and "die". *)
      flush t.channel;
      Unix.ftruncate (Unix.descr_of_out_channel t.channel) t.synced_bytes;
      raise (Failpoint.Crashed "wal.sync.before"));
    Obs.Span.with_span Obs.Span.Wal_sync "wal.sync" (fun span ->
        flush t.channel;
        Unix.fsync (Unix.descr_of_out_channel t.channel);
        let registry = Obs.Registry.global in
        let covered = unsynced_bytes t in
        t.synced_bytes <- t.written_bytes;
        Obs.Registry.incr registry "wal.sync_total";
        Obs.Registry.add_gauge registry "wal.bytes_unsynced"
          (-.float_of_int covered);
        Obs.Span.add_bytes span covered;
        Obs.Registry.observe registry "wal.sync.seconds"
          (Obs.Span.now () -. span.Obs.Span.start_s));
    Failpoint.hit "wal.sync.after"
  end

let close t =
  if t.open_ then begin
    (* A graceful close is a durability point: flush and fsync so the
       log survives power loss, not just process exit. Ignore errors —
       close must stay usable on crashed/degraded handles. *)
    (try
       flush t.channel;
       Unix.fsync (Unix.descr_of_out_channel t.channel);
       t.synced_bytes <- t.written_bytes
     with _ -> ())
  end;
  t.open_ <- false;
  close_out_noerr t.channel

let decode_entry payload =
  let bytes = Bytes.of_string payload in
  if Bytes.length bytes < 1 then
    Storage_error.corrupt ~context:"Wal.decode_entry" ~offset:0 "empty entry";
  let exhausted consumed =
    if consumed <> Bytes.length bytes then
      Storage_error.corrupt ~context:"Wal.decode_entry" ~offset:consumed
        "trailing bytes in entry"
  in
  let tuple_entry make offset =
    let tuple, consumed = Codec.decode_tuple bytes offset in
    exhausted consumed;
    make tuple
  in
  let txid_entry make =
    let txid, consumed = Codec.decode_varint bytes 1 in
    exhausted consumed;
    make txid
  in
  let txid_tuple_entry make =
    let txid, offset = Codec.decode_varint bytes 1 in
    tuple_entry (make txid) offset
  in
  match Bytes.get bytes 0 with
  | 'I' -> tuple_entry (fun t -> Insert t) 1
  | 'D' -> tuple_entry (fun t -> Delete t) 1
  | 'B' -> txid_entry (fun id -> Txn_begin id)
  | 'C' -> txid_entry (fun id -> Txn_commit id)
  | 'A' -> txid_entry (fun id -> Txn_abort id)
  | 'i' -> txid_tuple_entry (fun id t -> Txn_insert (id, t))
  | 'd' -> txid_tuple_entry (fun id t -> Txn_delete (id, t))
  | 'V' ->
    let view, offset = decode_string bytes 1 in
    let base, offset = decode_string bytes offset in
    let count, offset = Codec.decode_varint bytes offset in
    if count < 0 || count > Bytes.length bytes - offset then
      Storage_error.corrupt ~context:"Wal.decode_entry" ~offset
        (Printf.sprintf "view partition count %d out of range" count);
    let rec strings acc offset remaining =
      if remaining = 0 then (List.rev acc, offset)
      else
        let s, offset = decode_string bytes offset in
        strings (s :: acc) offset (remaining - 1)
    in
    let by, consumed = strings [] offset count in
    exhausted consumed;
    View_def { view; base; by }
  | 'W' ->
    let view, consumed = decode_string bytes 1 in
    exhausted consumed;
    View_drop view
  | 'M' ->
    let txid, offset = Codec.decode_varint bytes 1 in
    let count, offset = Codec.decode_varint bytes offset in
    if count < 0 || count > Bytes.length bytes - offset then
      Storage_error.corrupt ~context:"Wal.decode_entry" ~offset
        (Printf.sprintf "manifest table count %d out of range" count);
    let rec tables acc offset remaining =
      if remaining = 0 then (List.rev acc, offset)
      else
        let table, offset = decode_string bytes offset in
        let seq, offset = Codec.decode_varint bytes offset in
        tables ((table, seq) :: acc) offset (remaining - 1)
    in
    let tables, consumed = tables [] offset count in
    exhausted consumed;
    Manifest_commit { txid; tables }
  | c ->
    Storage_error.corrupt ~context:"Wal.decode_entry" ~offset:0
      (Printf.sprintf "unknown entry tag %C" c)

(* ------------------------------------------------------------------ *)
(* Replay and salvage                                                  *)
(* ------------------------------------------------------------------ *)

type salvage = {
  entries : entry list;
  format : format;
  generation : int;
  scanned_bytes : int;
  bytes_skipped : int;
  first_bad_offset : int option;
  torn_tail_bytes : int;
}

let empty_salvage =
  {
    entries = [];
    format = V1;
    generation = 0;
    scanned_bytes = 0;
    bytes_skipped = 0;
    first_bad_offset = None;
    torn_tail_bytes = 0;
  }

(* [Some (entry, next)] iff a complete, checksummed, decodable frame
   sits exactly at [offset]. Every parse failure means "no". *)
let valid_frame_v1 bytes length offset =
  if offset >= length || Bytes.get bytes offset <> frame_marker then None
  else
    match
      let payload_length, after = Codec.decode_varint bytes (offset + 1) in
      if payload_length < 0 || after + payload_length + 4 > length then None
      else begin
        let stored = read_le32 bytes (after + payload_length) in
        if stored <> Crc32.digest_bytes bytes ~pos:after ~len:payload_length then None
        else
          Some
            ( decode_entry (Bytes.sub_string bytes after payload_length),
              after + payload_length + 4 )
      end
    with
    | result -> result
    | exception Storage_error.Error _ -> None

let valid_frame_v0 bytes length offset =
  if offset >= length then None
  else
    match
      let payload_length, after = Codec.decode_varint bytes offset in
      if payload_length <= 0 || after + payload_length + 1 > length then None
      else begin
        let payload = Bytes.sub_string bytes after payload_length in
        let stored = Char.code (Bytes.get bytes (after + payload_length)) in
        if stored <> legacy_checksum payload then None
        else Some (decode_entry payload, after + payload_length + 1)
      end
    with
    | result -> result
    | exception Storage_error.Error _ -> None

(* Scan ahead: on a bad frame, the first later offset holding a fully
   valid frame (v1 additionally requires the marker byte, so almost
   every offset is rejected in O(1); random debris only survives a
   32-bit CRC with probability 2^-32, v0's additive byte let 1/256
   of debris through — the false-positive path this replaces). *)
let scan_forward valid_frame length probe =
  let rec loop probe =
    if probe >= length then None
    else
      match valid_frame probe with
      | Some _ -> Some probe
      | None -> loop (probe + 1)
  in
  loop probe

let salvage_frames bytes length start ~format ~generation =
  let valid_frame =
    match format with
    | V1 -> valid_frame_v1 bytes length
    | V0 -> valid_frame_v0 bytes length
  in
  let rec loop offset acc skipped first_bad =
    if offset >= length then (List.rev acc, skipped, first_bad, 0)
    else
      match valid_frame offset with
      | Some (entry, next) -> loop next (entry :: acc) skipped first_bad
      | None -> (
        let first_bad = match first_bad with None -> Some offset | some -> some in
        match scan_forward valid_frame length (offset + 1) with
        | Some resume -> loop resume acc (skipped + resume - offset) first_bad
        | None -> (List.rev acc, skipped, first_bad, length - offset))
  in
  let entries, bytes_skipped, first_bad_offset, torn_tail_bytes = loop start [] 0 None in
  {
    entries;
    format;
    generation;
    scanned_bytes = length;
    bytes_skipped;
    first_bad_offset;
    torn_tail_bytes;
  }

let replay_salvage path =
  Obs.Span.with_span Obs.Span.Wal_replay "wal.replay" (fun span ->
      let salvage =
        if not (Sys.file_exists path) then empty_salvage
        else begin
          let contents = read_file path in
          if contents = "" then empty_salvage
          else begin
            let bytes = Bytes.of_string contents in
            let length = Bytes.length bytes in
            match parse_header bytes with
            | `V1 (generation, offset) ->
              salvage_frames bytes length offset ~format:V1 ~generation
            | `V0 -> salvage_frames bytes length 0 ~format:V0 ~generation:0
            | `Torn ->
              {
                empty_salvage with
                scanned_bytes = length;
                first_bad_offset = Some 0;
                torn_tail_bytes = length;
              }
          end
        end
      in
      Obs.Span.set_bytes span salvage.scanned_bytes;
      Obs.Span.set_rows span (List.length salvage.entries);
      Obs.Registry.incr Obs.Registry.global "wal.replay_total";
      if salvage.first_bad_offset <> None then
        Obs.Registry.incr Obs.Registry.global "wal.salvage_total";
      salvage)

let replay path =
  let salvage = replay_salvage path in
  if salvage.bytes_skipped > 0 then
    Storage_error.corrupt ~context:"Wal.replay"
      ~offset:(Option.value ~default:0 salvage.first_bad_offset)
      (Printf.sprintf
         "corrupt entry mid-log (%d bytes skipped before a later valid frame); use \
          replay_salvage to recover around it"
         salvage.bytes_skipped)
  else salvage.entries

(* ------------------------------------------------------------------ *)
(* Opening                                                             *)
(* ------------------------------------------------------------------ *)

let open_log path =
  let existing = if Sys.file_exists path then read_file path else "" in
  let fresh =
    existing = ""
    ||
    (* A torn header means nothing after it can be valid either. *)
    parse_header (Bytes.of_string existing) = `Torn
  in
  (* Whatever the file holds once opening completes is the durable
     baseline: fsync it so the watermark claim ("synced bytes survive
     power loss") is true from the first append. *)
  let settle channel =
    flush channel;
    (try Unix.fsync (Unix.descr_of_out_channel channel) with Unix.Unix_error _ -> ())
  in
  if fresh then begin
    let channel =
      open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 path
    in
    output_string channel (encode_header 1);
    settle channel;
    let size = String.length (encode_header 1) in
    { channel; open_ = true; format = V1; generation = 1;
      written_bytes = size; synced_bytes = size; path }
  end
  else begin
    let salvage = replay_salvage path in
    let format = salvage.format and generation = salvage.generation in
    if salvage.torn_tail_bytes > 0 then begin
      (* A crash tore the last frame. Appending after the debris would
         bury it mid-log, so trim back to the last frame boundary; the
         channel is then already positioned for appending. *)
      let keep = String.sub existing 0 (String.length existing - salvage.torn_tail_bytes) in
      let channel =
        open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 path
      in
      output_string channel keep;
      settle channel;
      { channel; open_ = true; format; generation;
        written_bytes = String.length keep; synced_bytes = String.length keep;
        path }
    end
    else begin
      let channel =
        open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path
      in
      settle channel;
      let size = String.length existing in
      { channel; open_ = true; format; generation;
        written_bytes = size; synced_bytes = size; path }
    end
  end

(* ------------------------------------------------------------------ *)
(* Truncation                                                          *)
(* ------------------------------------------------------------------ *)

let write_truncated path generation =
  Failpoint.hit "wal.reset";
  let channel =
    open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 path
  in
  output_string channel (encode_header generation);
  (* A truncation discards history; the replacement header must be
     durable before anyone trusts the new generation. *)
  flush channel;
  (try Unix.fsync (Unix.descr_of_out_channel channel) with Unix.Unix_error _ -> ());
  close_out_noerr channel

let reset path =
  let previous =
    if Sys.file_exists path then (replay_salvage path).generation else 0
  in
  write_truncated path (previous + 1)

let truncate t =
  if not t.open_ then raise (Storage_error.Error (Storage_error.Closed "Wal.truncate"));
  close_out_noerr t.channel;
  let generation = t.generation + 1 in
  write_truncated t.path generation;
  t.channel <- open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 t.path;
  t.format <- V1;
  t.generation <- generation;
  let size = String.length (encode_header generation) in
  t.written_bytes <- size;
  t.synced_bytes <- size
