open Relational
open Nfr_core

type config = {
  raw_cap : int;
  mid_period : float;
  mid_cap : int;
  old_period : float;
  old_cap : int;
}

let default_config =
  { raw_cap = 120; mid_period = 10.; mid_cap = 90; old_period = 60.; old_cap = 240 }

let schema =
  Schema.of_names
    [
      ("Series", Value.Tstring);
      ("Tier", Value.Tstring);
      ("Value", Value.Tfloat);
      ("Ts", Value.Tfloat);
    ]

(* Application order: Ts nests first, so timestamps collect into sets
   per (series, tier, value) — constant-value runs are one tuple. *)
let order =
  List.map Attribute.make [ "Ts"; "Value"; "Tier"; "Series" ]

let tier_names = [| "raw"; "10s"; "1m" |]
let tiers = Array.to_list tier_names

(* One tier of one series: samples sorted by ts descending (newest
   first), so eviction takes the list's tail element. *)
type entry = { mutable samples : (float * float) list; mutable count : int }

type t = {
  cfg : config;
  store : Update.Store.t;
  entries : (string * int, entry) Hashtbl.t;
  mutable scrapes : int;
}

let create ?(config = default_config) () =
  if
    config.raw_cap < 1 || config.mid_cap < 1 || config.old_cap < 1
    || config.mid_period <= 0. || config.old_period <= 0.
  then invalid_arg "History.create: caps must be >= 1 and periods > 0";
  {
    cfg = config;
    (* Ts components grow to hundreds of stamps per tuple; indexing
       each stamp would make every insert O(run length), so the
       postings index skips Ts and verifies it per candidate. *)
    store = Update.Store.create ~unindexed:[ Attribute.make "Ts" ] ~order schema;
    entries = Hashtbl.create 64;
    scrapes = 0;
  }

let config t = t.cfg
let nfr t = Update.Store.snapshot t.store
let scrape_count t = t.scrapes

let entry t series ti =
  let key = (series, ti) in
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
    let e = { samples = []; count = 0 } in
    Hashtbl.add t.entries key e;
    e

let tuple series ti ts v =
  Tuple.make schema
    [
      Value.of_string series;
      Value.of_string tier_names.(ti);
      Value.of_float v;
      Value.of_float ts;
    ]

let tier_cap cfg = function
  | 0 -> cfg.raw_cap
  | 1 -> cfg.mid_cap
  | _ -> cfg.old_cap

(* Insert one sample into tier [ti], keeping the list ts-descending
   and replacing on timestamp collision (last writer wins), then
   cascade the eviction — the oldest sample rolls into the next tier
   bucketed by that tier's period, the last tier drops it. *)
let rec add_sample t series ti ts v =
  let e = entry t series ti in
  let rec place = function
    | [] -> ([ (ts, v) ], None, true)
    | ((ts0, v0) as head) :: rest ->
      if ts = ts0 then
        if v = v0 then (head :: rest, None, false)
        else ((ts, v) :: rest, Some (ts0, v0), true)
      else if ts > ts0 then ((ts, v) :: head :: rest, None, true)
      else
        let placed, removed, added = place rest in
        (head :: placed, removed, added)
  in
  let placed, removed, added = place e.samples in
  if added then begin
    (match removed with
    | Some (ts0, v0) -> Update.Store.delete t.store (tuple series ti ts0 v0)
    | None -> e.count <- e.count + 1);
    e.samples <- placed;
    ignore (Update.Store.insert t.store (tuple series ti ts v));
    if e.count > tier_cap t.cfg ti then begin
      match List.rev e.samples with
      | [] -> ()
      | (ts_old, v_old) :: rest_rev ->
        e.samples <- List.rev rest_rev;
        e.count <- e.count - 1;
        Update.Store.delete t.store (tuple series ti ts_old v_old);
        if ti < Array.length tier_names - 1 then begin
          let period = if ti = 0 then t.cfg.mid_period else t.cfg.old_period in
          let bucket = Float.of_int (int_of_float (Float.floor (ts_old /. period))) *. period in
          add_sample t series (ti + 1) bucket v_old
        end
    end
  end

let observe t ~series ~ts v =
  if not (Float.is_nan v) then add_sample t series 0 ts v

let labeled_series name labels =
  Printf.sprintf "%s{%s}" name
    (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels))

let scrape t reg ~now =
  let n = ref 0 in
  let sample series v =
    if not (Float.is_nan v) then begin
      observe t ~series ~ts:now v;
      incr n
    end
  in
  List.iter
    (fun (name, v) -> sample name (float_of_int v))
    (Obs.Registry.counters reg);
  List.iter
    (fun ((name, labels), v) -> sample (labeled_series name labels) (float_of_int v))
    (Obs.Registry.labeled_counters reg);
  List.iter (fun (name, v) -> sample name v) (Obs.Registry.gauges reg);
  List.iter
    (fun (name, s) ->
      sample (name ^ ".count") (float_of_int s.Obs.Registry.count);
      sample (name ^ ".p50") s.Obs.Registry.p50;
      sample (name ^ ".p99") s.Obs.Registry.p99)
    (Obs.Registry.summaries reg);
  t.scrapes <- t.scrapes + 1;
  !n

let series_names t =
  Hashtbl.fold (fun (series, _) _ acc -> series :: acc) t.entries []
  |> List.sort_uniq compare

let series_count t = List.length (series_names t)

let tier_counts t =
  Hashtbl.fold
    (fun (series, ti) e acc -> ((series, tier_names.(ti)), e.count) :: acc)
    t.entries []
  |> List.sort compare

let samples t ~series ~tier =
  match Array.to_list tier_names |> List.mapi (fun i n -> (i, n))
        |> List.find_opt (fun (_, n) -> n = tier)
  with
  | None -> []
  | Some (ti, _) -> (
    match Hashtbl.find_opt t.entries (series, ti) with
    | None -> []
    | Some e -> e.samples)

let history t ~series ?last () =
  let all =
    Array.to_list tier_names
    |> List.concat_map (fun tier ->
           List.map (fun (ts, v) -> (tier, ts, v)) (samples t ~series ~tier))
    |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
  in
  match last with
  | None -> all
  | Some n when n >= List.length all -> all
  | Some n ->
    let drop = List.length all - n in
    List.filteri (fun i _ -> i >= drop) all
