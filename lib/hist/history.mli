(** Metrics history: the server's own telemetry stored as a canonical
    NFR.

    A metric series is a textbook non-first-normal-form relation —
    [(series, tier, value, {timestamps})] — so the scraped history
    lives in an {!Nfr_core.Update.Store} under the application order
    [[Ts; Value; Tier; Series]]: timestamps nest innermost, so a run
    of scrapes where a series holds one value collapses into a single
    NFR tuple whose [Ts] component is the whole run, and flat-lined
    series cost one tuple per tier no matter how long the history.
    Every sample lands through {!Nfr_core.Update} ([recons]-style
    incremental maintenance, Theorem A-4), never by renesting.

    {2 Age tiers}

    Retention is fixed-memory per series via three tiers:

    - [raw] — every scrape, capped at [raw_cap] samples;
    - [10s] — samples evicted from [raw], last-sample-per-[mid_period]
      bucket, capped at [mid_cap];
    - [1m] — samples evicted from [10s], last-sample-per-[old_period]
      bucket, capped at [old_cap]; evictions here are dropped.

    So a series never holds more than [raw_cap + mid_cap + old_cap]
    samples, and recent history is dense while old history is
    coarse. *)

open Relational
open Nfr_core

type config = {
  raw_cap : int;  (** raw samples kept per series *)
  mid_period : float;  (** seconds per [10s]-tier bucket *)
  mid_cap : int;
  old_period : float;  (** seconds per [1m]-tier bucket *)
  old_cap : int;
}

val default_config : config
(** 120 raw samples (10 min of 5 s scrapes), 90 x 10 s buckets,
    240 x 60 s buckets — ≤ 450 samples per series, ~4.4 h of span. *)

type t

val create : ?config:config -> unit -> t
(** @raise Invalid_argument on a non-positive cap or period. *)

val config : t -> config

val schema : Schema.t
(** [(Series:string, Tier:string, Value:float, Ts:float)]. *)

val order : Attribute.t list
(** The nest application order, [[Ts; Value; Tier; Series]] — what
    {!nfr} is canonical for. *)

val tiers : string list
(** [["raw"; "10s"; "1m"]], newest to oldest. *)

val observe : t -> series:string -> ts:float -> float -> unit
(** Record one sample into the raw tier (cascading evictions through
    the downsample tiers). A sample at a timestamp the tier already
    holds replaces the old value (last wins); NaN values are
    dropped. *)

val scrape : t -> Obs.Registry.t -> now:float -> int
(** Sample every current registry series at time [now]: counters and
    gauges by name, labeled counters as [name{k=v,...}], and each
    non-empty histogram as [name.count] / [name.p50] / [name.p99].
    Returns the number of series sampled. *)

val nfr : t -> Nfr.t
(** The history as a canonical NFR (persistent snapshot; cheap). *)

val series_count : t -> int
val series_names : t -> string list

val tier_counts : t -> ((string * string) * int) list
(** Live sample count per (series, tier), sorted. *)

val samples : t -> series:string -> tier:string -> (float * float) list
(** [(ts, value)] samples of one tier, newest first. *)

val history : t -> series:string -> ?last:int -> unit -> (string * float * float) list
(** All tiers of one series merged as [(tier, ts, value)], ascending
    by timestamp; [?last] keeps only the newest [n]. *)

val scrape_count : t -> int
