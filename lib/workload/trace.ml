open Relational

type op =
  | Insert of Tuple.t
  | Delete of Tuple.t

let mixed ~seed ?(insert_ratio = 0.6) ?(zipf_s = 0.8) ?(domain = 12) start ~ops =
  let rng = Prng.create seed in
  let schema = Relation.schema start in
  let zipf = Zipf.create ~n:domain ~s:zipf_s in
  let fresh_candidate () =
    Tuple.make schema
      (List.mapi
         (fun i _ ->
           Value.of_string
             (Printf.sprintf "%c%d"
                (Char.chr (Char.code 'a' + (i mod 26)))
                (Zipf.sample zipf rng)))
         (Schema.attributes schema))
  in
  let rec build live remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      let want_insert =
        Relation.is_empty live
        || (Prng.float rng < insert_ratio
           &&
           (* Find a fresh tuple with a bounded number of draws. *)
           true)
      in
      if want_insert then begin
        let rec draw attempts =
          if attempts > 50 then None
          else
            let candidate = fresh_candidate () in
            if Relation.mem live candidate then draw (attempts + 1)
            else Some candidate
        in
        match draw 0 with
        | Some tuple ->
          build (Relation.add live tuple) (remaining - 1) (Insert tuple :: acc)
        | None -> (
          (* Space too hot; delete instead if possible. *)
          match Relation.tuples live with
          | [] -> List.rev acc
          | tuples ->
            let victim = List.nth tuples (Prng.int rng (List.length tuples)) in
            build (Relation.remove live victim) (remaining - 1)
              (Delete victim :: acc))
      end
      else
        match Relation.tuples live with
        | [] -> build live remaining acc (* unreachable: forced insert *)
        | tuples ->
          let victim = List.nth tuples (Prng.int rng (List.length tuples)) in
          build (Relation.remove live victim) (remaining - 1)
            (Delete victim :: acc)
    end
  in
  build start ops []

let prefix trace n = List.filteri (fun i _ -> i < n) trace

type crash_point = {
  after_ops : int;
  site : string;
}

let crash_schedule ~seed ~sites ~ops ~points =
  let site_array = Array.of_list sites in
  if Array.length site_array = 0 || ops <= 0 || points <= 0 then []
  else begin
    let rng = Prng.create seed in
    let count = min points ops in
    Prng.sample_distinct rng count ops
    |> List.sort compare
    |> List.map (fun after_ops -> { after_ops; site = Prng.pick rng site_array })
  end

let replay trace ~insert ~delete =
  List.iter
    (fun op -> match op with Insert t -> insert t | Delete t -> delete t)
    trace

let final_relation start trace =
  List.fold_left
    (fun live op ->
      match op with
      | Insert t -> Relation.add live t
      | Delete t -> Relation.remove live t)
    start trace

let pp_op ppf = function
  | Insert t -> Format.fprintf ppf "+%a" Tuple.pp t
  | Delete t -> Format.fprintf ppf "-%a" Tuple.pp t

(* NFQL literal syntax: ints/floats/bools bare, strings quoted with
   [''] doubling — matching the lexer, not [Value.pp] (which leaves
   identifier-like strings bare and would collide with column names
   in a statement). *)
let nfql_literal = function
  | Value.Vint i -> string_of_int i
  | Value.Vfloat f -> Printf.sprintf "%.17g" f
  | Value.Vbool b -> string_of_bool b
  | Value.Vstring s ->
    let buffer = Buffer.create (String.length s + 2) in
    Buffer.add_char buffer '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string buffer "''"
        else Buffer.add_char buffer c)
      s;
    Buffer.add_char buffer '\'';
    Buffer.contents buffer

let nfql_statement ~table op =
  let tuple, verb =
    match op with
    | Insert t -> (t, "insert into")
    | Delete t -> (t, "delete from")
  in
  Printf.sprintf "%s %s values (%s)" verb table
    (String.concat ", " (List.map nfql_literal (Tuple.values tuple)))
