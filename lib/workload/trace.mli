(** Update traces: realistic operation streams.

    The E7/E10 benches sample independent operations against a fixed
    relation; a {e trace} instead evolves the relation — inserts and
    deletes interleave, values are drawn with optional Zipf heat so
    hot groups keep growing and shrinking (the regime where the Sec. 4
    algorithms do real composition work). Traces are valid by
    construction: inserts are fresh, deletes hit live tuples. *)

open Relational

type op =
  | Insert of Tuple.t
  | Delete of Tuple.t

val mixed :
  seed:int ->
  ?insert_ratio:float ->
  ?zipf_s:float ->
  ?domain:int ->
  Relation.t ->
  ops:int ->
  op list
(** [mixed ~seed start ~ops] — a trace of [ops] operations starting
    from [start]. Each step inserts a fresh tuple with probability
    [insert_ratio] (default [0.6]; forced to insert when the live set
    is empty, to delete when no fresh tuple is found), drawing each
    cell from a per-column alphabet of [domain] values (default [12])
    with Zipf exponent [zipf_s] (default [0.8]). Deletes pick a
    uniformly random live tuple. *)

val prefix : op list -> int -> op list
(** The first [n] operations — the state a crash after [n] applied
    operations must recover to (via {!final_relation}). *)

(** A scheduled failure: after [after_ops] operations have been
    applied, the failure site named [site] is armed. Sites are plain
    strings so this module stays independent of the storage layer;
    the crash soak passes [Storage.Failpoint] site names through. *)
type crash_point = {
  after_ops : int;
  site : string;
}

val crash_schedule :
  seed:int -> sites:string list -> ops:int -> points:int -> crash_point list
(** [crash_schedule ~seed ~sites ~ops ~points] — up to [points]
    crash points at distinct operation indices in [\[0, ops)],
    ascending, each assigned a site drawn deterministically from
    [sites]. Equal seeds give equal schedules. *)

val replay :
  op list -> insert:(Tuple.t -> unit) -> delete:(Tuple.t -> unit) -> unit

val final_relation : Relation.t -> op list -> Relation.t
(** The flat relation a correct executor must end with. *)

val pp_op : Format.formatter -> op -> unit

val nfql_statement : table:string -> op -> string
(** The operation as one NFQL DML statement against [table]
    ([insert into t values ('a1', ...)]) — what the network soak and
    the closed-loop bench driver replay over the wire. String values
    are quoted and escaped for the NFQL lexer. *)
