(** Structured spans: cross-layer tracing of one request.

    A {e span} is one timed unit of work (a frame decode, a parse, one
    physical operator, a WAL fsync, a nest fixpoint) with a parent
    link and a trace id tying everything a single request did into one
    tree. Spans are recorded into a fixed-capacity ring buffer {e at
    enter time}, so among retained spans a parent always precedes its
    children.

    The disabled path is the common one: instrumentation calls
    {!enter}/{!with_span} unconditionally, and when no scope is open
    ({!in_trace} not active) the returned span is {e detached} — it
    still accumulates timing (EXPLAIN ANALYZE reads operator clocks
    off spans either way) but costs two clock reads and is never
    stored. All state is process-global and single-threaded. *)

(** The event taxonomy. [Statement] carries the statement verb,
    [Operator] the physical operator label. *)
type event =
  | Request
  | Frame_rx
  | Frame_tx
  | Parse
  | Plan
  | Statement of string
  | Operator of string
  | Txn of string  (* begin/commit/rollback/conflict *)
  | Wal_append
  | Wal_fsync  (** legacy name: the user-buffer flush inside {!Wal_append} *)
  | Wal_sync  (** a real [fsync] durability barrier ([Wal.sync]) *)
  | Wal_replay
  | Snapshot_write
  | Snapshot_load
  | Salvage
  | Nest_fixpoint
  | Nest_apply
  | Unnest_apply
  | Compose_step
  | Custom of string

val event_name : event -> string

type t = {
  id : int;  (** unique per recorded span; 0 when detached *)
  trace : int;  (** 0 when detached *)
  parent : int;  (** 0 for trace roots *)
  event : event;
  label : string;
  start_s : float;
  mutable busy_s : float;
  mutable rows : int;
  mutable bytes : int;
  mutable ended : bool;
}

val set_enabled : bool -> unit
(** Master switch the server consults before opening per-request
    traces. Explicit {!in_trace} callers (the TRACE statement, the
    trace CLI) trace regardless. *)

val enabled : unit -> bool

val set_capacity : int -> unit
(** Resize (and clear) the span ring. Clamped to at least 1. *)

val capacity : unit -> int
val reset : unit -> unit

val now : unit -> float
(** The span clock ([Unix.gettimeofday]). *)

val in_trace : ?trace:int -> (int -> 'a) -> 'a
(** Open a trace scope: every span entered dynamically within is
    recorded under this trace id (fresh unless [?trace] resumes an
    existing one). Nests; the innermost scope wins. *)

val current_trace : unit -> int option

val with_span : event -> string -> (t -> 'a) -> 'a
(** Run [f] under a new span; children entered inside nest beneath it.
    On exit (or exception) the elapsed wall clock is {e added} to
    [busy_s] — pre-seeding with {!add_busy} composes. *)

val enter : event -> string -> t
(** A leaf span without scope push: callers accumulate {!add_busy}
    themselves (the executor's operators) and {!finish} it later. *)

val add_busy : t -> float -> unit
val set_rows : t -> int -> unit
val add_rows : t -> int -> unit
val set_bytes : t -> int -> unit
val add_bytes : t -> int -> unit
val busy : t -> float

val finish : t -> unit
(** Mark ended; if no busy time was ever accumulated, charge the wall
    clock since enter. Idempotent. *)

val spans : unit -> t list
(** Ring contents, oldest first (parents before children). *)

val spans_of_trace : int -> t list

val to_json : t -> string
val to_json_lines : unit -> string
(** The whole ring as JSON lines. *)

val render_tree : t list -> string
(** Indented per-span lines (busy ms, event, label, rows, bytes) for
    spans of one trace in ring order. *)
