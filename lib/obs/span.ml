(* Structured spans with parent links and per-request trace ids.

   The design optimizes for the disabled path: instrumentation sites
   call {!enter}/{!with_span} unconditionally, and when no trace scope
   is open the span they get is a detached record (trace 0) that still
   accumulates timing — EXPLAIN ANALYZE reads operator timings off
   spans whether or not tracing is on — but is never written to the
   ring. Opening a scope ({!in_trace}) is what turns recording on for
   everything dynamically beneath it.

   Recorded spans go into a fixed-capacity ring at *enter* time, so
   within the retained window a parent always precedes its children —
   the ordering invariant the trace renderers rely on (and the
   property tests pin down). All state is process-global and
   single-threaded, matching the select-loop server. *)

type event =
  | Request
  | Frame_rx
  | Frame_tx
  | Parse
  | Plan
  | Statement of string  (* the statement verb *)
  | Operator of string  (* the physical operator label *)
  | Txn of string  (* begin/commit/rollback/conflict *)
  | Wal_append
  | Wal_fsync
  | Wal_sync
  | Wal_replay
  | Snapshot_write
  | Snapshot_load
  | Salvage
  | Nest_fixpoint
  | Nest_apply
  | Unnest_apply
  | Compose_step
  | Custom of string

let event_name = function
  | Request -> "request"
  | Frame_rx -> "frame-rx"
  | Frame_tx -> "frame-tx"
  | Parse -> "parse"
  | Plan -> "plan"
  | Statement _ -> "statement"
  | Operator _ -> "operator"
  | Txn _ -> "txn"
  | Wal_append -> "wal-append"
  | Wal_fsync -> "wal-fsync"
  | Wal_sync -> "wal-sync"
  | Wal_replay -> "wal-replay"
  | Snapshot_write -> "snapshot-write"
  | Snapshot_load -> "snapshot-load"
  | Salvage -> "salvage"
  | Nest_fixpoint -> "nest-fixpoint"
  | Nest_apply -> "nest"
  | Unnest_apply -> "unnest"
  | Compose_step -> "compose-step"
  | Custom name -> name

type t = {
  id : int;  (* 0 for detached (unrecorded) spans *)
  trace : int;  (* 0 when detached *)
  parent : int;  (* 0 for trace roots *)
  event : event;
  label : string;
  start_s : float;
  mutable busy_s : float;
  mutable rows : int;
  mutable bytes : int;
  mutable ended : bool;
}

(* Master switch consulted by the server to decide whether to open a
   per-request trace at all. Explicit in_trace callers (TRACE, the
   trace CLI) work regardless. *)
let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let next_id = ref 0
let next_trace = ref 0
let default_capacity = 4096
let ring = ref (Array.make default_capacity None)
let ring_start = ref 0
let ring_len = ref 0

let set_capacity n =
  let n = max 1 n in
  ring := Array.make n None;
  ring_start := 0;
  ring_len := 0

let capacity () = Array.length !ring

(* Stack of open scopes: (trace id, parent span id). *)
let scopes : (int * int) list ref = ref []

let reset () =
  scopes := [];
  ring_start := 0;
  ring_len := 0;
  Array.fill !ring 0 (Array.length !ring) None

let now = Unix.gettimeofday

let current_trace () =
  match !scopes with [] -> None | (trace, _) :: _ -> Some trace

let record sp =
  let buf = !ring in
  let cap = Array.length buf in
  if !ring_len < cap then begin
    buf.((!ring_start + !ring_len) mod cap) <- Some sp;
    Stdlib.incr ring_len
  end
  else begin
    buf.(!ring_start) <- Some sp;
    ring_start := (!ring_start + 1) mod cap
  end

let spans () =
  let buf = !ring in
  let cap = Array.length buf in
  List.init !ring_len (fun i ->
      match buf.((!ring_start + i) mod cap) with
      | Some sp -> sp
      | None -> assert false)

let spans_of_trace trace = List.filter (fun sp -> sp.trace = trace) (spans ())

let fresh_trace () =
  Stdlib.incr next_trace;
  !next_trace

let pop_scope () =
  match !scopes with _ :: rest -> scopes := rest | [] -> ()

let in_trace ?trace f =
  let trace = match trace with Some t -> t | None -> fresh_trace () in
  scopes := (trace, 0) :: !scopes;
  Fun.protect ~finally:pop_scope (fun () -> f trace)

let enter event label =
  match !scopes with
  | [] ->
    {
      id = 0;
      trace = 0;
      parent = 0;
      event;
      label;
      start_s = now ();
      busy_s = 0.;
      rows = 0;
      bytes = 0;
      ended = false;
    }
  | (trace, parent) :: _ ->
    Stdlib.incr next_id;
    let sp =
      {
        id = !next_id;
        trace;
        parent;
        event;
        label;
        start_s = now ();
        busy_s = 0.;
        rows = 0;
        bytes = 0;
        ended = false;
      }
    in
    record sp;
    sp

let add_busy sp seconds = sp.busy_s <- sp.busy_s +. seconds
let set_rows sp n = sp.rows <- n
let add_rows sp n = sp.rows <- sp.rows + n
let set_bytes sp n = sp.bytes <- n
let add_bytes sp n = sp.bytes <- sp.bytes + n
let busy sp = sp.busy_s

let finish sp =
  if not sp.ended then begin
    sp.ended <- true;
    if sp.busy_s = 0. then sp.busy_s <- now () -. sp.start_s
  end

let with_span event label f =
  let sp = enter event label in
  let pushed = sp.trace <> 0 in
  if pushed then scopes := (sp.trace, sp.id) :: !scopes;
  Fun.protect
    ~finally:(fun () ->
      if pushed then pop_scope ();
      sp.ended <- true;
      (* Accumulate (rather than set) so callers can pre-seed work
         done before the span opened, e.g. frame decode time. *)
      sp.busy_s <- sp.busy_s +. (now () -. sp.start_s))
    (fun () -> f sp)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let to_json sp =
  Printf.sprintf
    "{\"trace\":%d,\"span\":%d,\"parent\":%d,\"event\":%S,\"label\":%S,\"start_s\":%.6f,\"busy_ms\":%.3f,\"rows\":%d,\"bytes\":%d}"
    sp.trace sp.id sp.parent (event_name sp.event) sp.label sp.start_s
    (sp.busy_s *. 1000.) sp.rows sp.bytes

let to_json_lines () = String.concat "\n" (List.map to_json (spans ()))

(* Indented tree rendering (the trace CLI's output). Spans arrive in
   ring order — parents before children — so one pass with a depth
   memo suffices; a span whose parent fell off the ring renders at
   depth 0. *)
let render_tree spans =
  let depths = Hashtbl.create 64 in
  let buffer = Buffer.create 512 in
  List.iter
    (fun sp ->
      let depth =
        match Hashtbl.find_opt depths sp.parent with
        | Some d -> d + 1
        | None -> 0
      in
      Hashtbl.replace depths sp.id depth;
      Buffer.add_string buffer
        (Printf.sprintf "%10.3fms  %s%-14s %s%s%s\n" (sp.busy_s *. 1000.)
           (String.make (2 * depth) ' ')
           (event_name sp.event)
           (if sp.label = "" then "" else sp.label ^ " ")
           (if sp.rows > 0 then Printf.sprintf "rows=%d " sp.rows else "")
           (if sp.bytes > 0 then Printf.sprintf "bytes=%d" sp.bytes else "")))
    spans;
  Buffer.contents buffer
