(** Process metrics: named counters, labeled counters, gauges and
    latency histograms, shared by every layer.

    Promoted out of [lib/server] so storage (WAL appends, fsyncs,
    snapshots), the executor and the nest kernel charge the same
    registry the server exposes. A registry is a process-wide (or
    per-loop, in tests) bag of monotonic counters ([frames.in],
    [wal.fsync_total], ...), float gauges ([connections.open],
    [storage.live_tuples]) and log-bucketed histograms of seconds
    ([query.seconds]), cheap enough to update on every frame.

    Three renderings: {!to_text} (the METRICS dump), {!to_json}
    (shares the flat-object encoding of [Storage.Stats.to_json]), and
    {!to_prometheus} (text exposition format, names prefixed [nf2_]
    and sanitized, validated by {!parse_prometheus}).

    Histograms bucket by powers of two starting at 1 µs, so quantile
    estimates carry at most a 2x bucket-width error — plenty for p50 /
    p95 / p99 service-time reporting, with exact [count], [sum] and
    [max] kept alongside. *)

type t

val create : unit -> t

val global : t
(** The default process-wide registry. The CLI server passes it as its
    loop registry, so storage-layer series (WAL, snapshots) land in
    the same scrape. *)

val incr : t -> string -> unit
(** Add 1 to a counter, creating it at 0 first (one hash lookup). *)

val add : t -> string -> int -> unit

val get : t -> string -> int
(** Current value; 0 for a counter never touched. *)

val declare : t -> string -> unit
(** Create a counter at 0 if absent, so required series exist in the
    exposition before any traffic. *)

val incr_labeled : t -> string -> (string * string) list -> unit
(** One series per (name, label set); label order is irrelevant. *)

val add_labeled : t -> string -> (string * string) list -> int -> unit
val get_labeled : t -> string -> (string * string) list -> int

val set_gauge : t -> string -> float -> unit
val add_gauge : t -> string -> float -> unit
val gauge : t -> string -> float

val observe : t -> string -> float -> unit
(** Record one duration (seconds) in a histogram. Negative samples
    clamp to 0. *)

val declare_histogram : t -> string -> unit

val bucket_count : int

val bucket_of_seconds : float -> int
(** Total on all floats; monotone; result in [0, bucket_count). *)

val bucket_upper_seconds : int -> float
(** Inclusive upper bound of bucket [i], in seconds (2^i µs). *)

(** Summary of one histogram. Quantiles are bucket upper bounds
    (within 2x of the true value); [max] and [sum] are exact. *)
type summary = {
  count : int;
  sum : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : t -> string -> summary option
(** [None] when the histogram has no observations. *)

val quantile : float list -> float -> float
(** [quantile samples q] — exact quantile of a raw sample list (the
    bench's client-side latencies). [0.] on an empty list. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val labeled_counters : t -> ((string * (string * string) list) * int) list
val gauges : t -> (string * float) list

val summaries : t -> (string * summary) list
(** One {!summary} per histogram with at least one observation, sorted
    by name. *)

val to_text : t -> string
(** Human-readable dump: one [name value] line per counter and gauge,
    one summary line per histogram. *)

val to_json : t -> string
(** [{"counters":{...},"gauges":{...},"histograms":{...}}]. *)

val to_prometheus : t -> string
(** Prometheus text exposition: [# TYPE] comments, [nf2_]-prefixed
    sanitized names, cumulative [_bucket{le="..."}] series plus
    [_sum]/[_count] per histogram. *)

(** One parsed exposition sample. *)
type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

val parse_prometheus : string -> (sample list, string) result
(** Parse text exposition format (own output or any well-behaved
    exporter's): comments and blank lines skipped, every other line
    must be [NAME[{k="v",...}] VALUE]. [Error] pinpoints the first bad
    line. *)

val reset : t -> unit
