(* Slowest-N trace retention. The ring is a sorted list (slowest
   first): capacities are small (default 16) and offers happen at most
   once per traced request, so O(N) insertion is cheaper than any
   heap would be at this size. *)

type trace = {
  trace_id : int;
  root_label : string;
  root_s : float;
  spans : Span.t list;
}

type t = {
  mutable cap : int;
  mutable entries : trace list;  (* sorted by root_s descending *)
  mutable n : int;
}

let default_capacity = 16

let create ?(capacity = default_capacity) () =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Retain.create: capacity %d < 1" capacity);
  { cap = capacity; entries = []; n = 0 }

let capacity t = t.cap
let count t = t.n
let snapshot t = t.entries

let min_root_s t =
  if t.n < t.cap then 0.
  else
    match List.rev t.entries with [] -> 0. | last :: _ -> last.root_s

let rec insert_sorted entry = function
  | [] -> [ entry ]
  | head :: rest ->
    if entry.root_s > head.root_s then entry :: head :: rest
    else head :: insert_sorted entry rest

let drop_last entries =
  match List.rev entries with
  | [] -> []
  | _ :: rest -> List.rev rest

let offer t spans =
  match List.find_opt (fun s -> s.Span.parent = 0 && s.Span.id <> 0) spans with
  | None -> ()
  | Some root ->
    let root_s = Span.busy root in
    if t.n < t.cap then begin
      t.entries <-
        insert_sorted
          { trace_id = root.Span.trace; root_label = root.Span.label; root_s; spans }
          t.entries;
      t.n <- t.n + 1
    end
    else if root_s > min_root_s t then
      t.entries <-
        insert_sorted
          { trace_id = root.Span.trace; root_label = root.Span.label; root_s; spans }
          (drop_last t.entries)

let clear t =
  t.entries <- [];
  t.n <- 0
