(** Tail-sampled slow-trace retention.

    The global {!Span} ring keeps the newest spans regardless of how
    interesting they were — a slow request's tree is overwritten by
    the next dozen fast ones. A retention ring instead keeps the [N]
    {e slowest complete traces} seen so far, ranked by the root span's
    busy time: after a traced request finishes, the server offers its
    span tree here, and the tree survives as long as it stays among
    the slowest. This is tail sampling — admission is decided after
    the outcome is known.

    Unlike {!Span}'s process-global ring, a retention ring is a plain
    value owned by whoever samples (the server context), so tests can
    drive one with synthetic spans. *)

(** One retained trace: the root's identity and duration plus the
    complete span list in ring order (parents before children). *)
type trace = {
  trace_id : int;
  root_label : string;
  root_s : float;  (** the root span's busy seconds — the rank key *)
  spans : Span.t list;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity {!default_capacity}.
    @raise Invalid_argument when [capacity < 1]. *)

val default_capacity : int
(** 16 traces. *)

val capacity : t -> int
val count : t -> int

val offer : t -> Span.t list -> unit
(** [offer t spans] submits one complete trace (the spans of a single
    finished request, ring order). The trace root is the unique span
    with [parent = 0]; an empty or rootless list is ignored. The trace
    is retained iff the ring has room or its root busy time beats the
    current slowest-ranked minimum, evicting that minimum. *)

val snapshot : t -> trace list
(** Retained traces, slowest first. *)

val min_root_s : t -> float
(** The admission bar: the smallest retained root duration, 0. while
    the ring has room. *)

val clear : t -> unit
