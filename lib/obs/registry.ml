(* The metrics registry, promoted out of lib/server so every layer
   (storage, executor, nest, server) can charge the same counters.

   Buckets are powers of two over 1 µs: bucket [i] counts samples in
   (2^(i-1) µs, 2^i µs]; bucket 0 holds everything at or under 1 µs.
   40 buckets reach ~6.4 days, far past any request timeout. *)
let bucket_count = 40

type histogram = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  labeled : (string * (string * string) list, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    labeled = Hashtbl.create 8;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
  }

let global = create ()

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let add t name n =
  let r = counter_ref t name in
  r := !r + n

let incr t name = add t name 1
let declare t name = ignore (counter_ref t name)

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(* Labeled counters: one series per (name, label set). Labels are
   stored sorted so {a,b} and {b,a} hit the same series. *)
let labeled_ref t name labels =
  let key = (name, List.sort compare labels) in
  match Hashtbl.find_opt t.labeled key with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.labeled key r;
    r

let add_labeled t name labels n =
  let r = labeled_ref t name labels in
  r := !r + n

let incr_labeled t name labels = add_labeled t name labels 1

let get_labeled t name labels =
  match Hashtbl.find_opt t.labeled (name, List.sort compare labels) with
  | Some r -> !r
  | None -> 0

let gauge_ref t name =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r
  | None ->
    let r = ref 0. in
    Hashtbl.add t.gauges name r;
    r

let set_gauge t name v = gauge_ref t name := v

let add_gauge t name delta =
  let r = gauge_ref t name in
  r := !r +. delta

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0.

let bucket_of_seconds seconds =
  let micros = seconds *. 1e6 in
  let rec find i bound =
    if i >= bucket_count - 1 || micros <= bound then i
    else find (i + 1) (bound *. 2.)
  in
  find 0 1.

let bucket_upper_seconds i = 1e-6 *. (2. ** float_of_int i)

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h =
      { buckets = Array.make bucket_count 0; h_count = 0; h_sum = 0.; h_max = 0. }
    in
    Hashtbl.add t.histograms name h;
    h

let declare_histogram t name = ignore (histogram t name)

let observe t name seconds =
  let seconds = if seconds < 0. then 0. else seconds in
  let h = histogram t name in
  let b = bucket_of_seconds seconds in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. seconds;
  if seconds > h.h_max then h.h_max <- seconds

type summary = {
  count : int;
  sum : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let histogram_quantile h q =
  (* Upper bound of the first bucket at which the cumulative count
     reaches q of the total, capped by the exact max. An empty
     histogram has no quantiles; report 0 rather than whatever h_max
     was initialized to. *)
  if h.h_count = 0 then 0.
  else begin
    let target = int_of_float (ceil (q *. float_of_int h.h_count)) in
    let target = max 1 target in
    let rec walk i cumulative =
      if i >= bucket_count then h.h_max
      else
        let cumulative = cumulative + h.buckets.(i) in
        if cumulative >= target then min (bucket_upper_seconds i) h.h_max
        else walk (i + 1) cumulative
    in
    walk 0 0
  end

let summarize t name =
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some h when h.h_count = 0 -> None
  | Some h ->
    Some
      {
        count = h.h_count;
        sum = h.h_sum;
        max = h.h_max;
        p50 = histogram_quantile h 0.5;
        p95 = histogram_quantile h 0.95;
        p99 = histogram_quantile h 0.99;
      }

let quantile samples q =
  match samples with
  | [] -> 0.
  | _ ->
    let sorted = List.sort compare samples in
    let n = List.length sorted in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    let rank = min (max rank 1) n in
    List.nth sorted (rank - 1)

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort compare

let labeled_counters t =
  Hashtbl.fold (fun key r acc -> (key, !r) :: acc) t.labeled []
  |> List.sort compare

let gauges t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.gauges []
  |> List.sort compare

let summaries t =
  Hashtbl.fold
    (fun name _ acc ->
      match summarize t name with
      | Some s -> (name, s) :: acc
      | None -> acc)
    t.histograms []
  |> List.sort compare

(* Exposition-format label escaping: exactly backslash, double quote
   and newline are escaped. OCaml's %S is close but not it — it
   writes tab/CR/non-printables as OCaml escapes, which a Prometheus
   parser (including ours) reads back as different bytes. *)
let escape_label_value v =
  let buffer = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '"' -> Buffer.add_string buffer "\\\""
      | '\n' -> Buffer.add_string buffer "\\n"
      | c -> Buffer.add_char buffer c)
    v;
  Buffer.contents buffer

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
    Printf.sprintf "{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
            labels))

let to_text t =
  let buffer = Buffer.create 256 in
  List.iter
    (fun (name, value) -> Buffer.add_string buffer (Printf.sprintf "%s %d\n" name value))
    (counters t);
  List.iter
    (fun ((name, labels), value) ->
      Buffer.add_string buffer
        (Printf.sprintf "%s%s %d\n" name (render_labels labels) value))
    (labeled_counters t);
  List.iter
    (fun (name, value) ->
      Buffer.add_string buffer (Printf.sprintf "%s %.6g\n" name value))
    (gauges t);
  List.iter
    (fun (name, s) ->
      Buffer.add_string buffer
        (Printf.sprintf
           "%s count=%d sum=%.6f max=%.6f p50=%.6f p95=%.6f p99=%.6f\n" name
           s.count s.sum s.max s.p50 s.p95 s.p99))
    (summaries t);
  Buffer.contents buffer

let to_json t =
  let counter_fields =
    List.map
      (fun (name, value) -> Printf.sprintf "%S:%d" name value)
      (counters t)
  in
  let gauge_fields =
    List.map
      (fun (name, value) -> Printf.sprintf "%S:%.6f" name value)
      (gauges t)
  in
  let histogram_fields =
    List.map
      (fun (name, s) ->
        Printf.sprintf
          "%S:{\"count\":%d,\"sum\":%.6f,\"max\":%.6f,\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f}"
          name s.count s.sum s.max s.p50 s.p95 s.p99)
      (summaries t)
  in
  Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}"
    (String.concat "," counter_fields)
    (String.concat "," gauge_fields)
    (String.concat "," histogram_fields)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Metric names are namespaced nf2_ and sanitized: every character
   outside [a-zA-Z0-9_:] becomes '_' (so "wal.fsync_total" scrapes as
   nf2_wal_fsync_total). *)
let prom_name name =
  let buffer = Buffer.create (String.length name + 4) in
  Buffer.add_string buffer "nf2_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' ->
        Buffer.add_char buffer c
      | _ -> Buffer.add_char buffer '_')
    name;
  Buffer.contents buffer

let prom_float v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else Printf.sprintf "%.12g" v

let to_prometheus t =
  let buffer = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  List.iter
    (fun (name, value) ->
      let pname = prom_name name in
      line "# TYPE %s counter" pname;
      line "%s %d" pname value)
    (counters t);
  (* Group labeled series under one TYPE comment per metric name. *)
  let last_labeled = ref "" in
  List.iter
    (fun ((name, labels), value) ->
      let pname = prom_name name in
      if pname <> !last_labeled then begin
        line "# TYPE %s counter" pname;
        last_labeled := pname
      end;
      line "%s%s %d" pname (render_labels labels) value)
    (labeled_counters t);
  List.iter
    (fun (name, value) ->
      let pname = prom_name name in
      line "# TYPE %s gauge" pname;
      line "%s %s" pname (prom_float value))
    (gauges t);
  let histograms =
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms []
    |> List.sort compare
  in
  List.iter
    (fun (name, h) ->
      let pname = prom_name name in
      line "# TYPE %s histogram" pname;
      let cumulative = ref 0 in
      Array.iteri
        (fun i n ->
          cumulative := !cumulative + n;
          line "%s_bucket{le=\"%s\"} %d" pname
            (prom_float (bucket_upper_seconds i))
            !cumulative)
        h.buckets;
      line "%s_bucket{le=\"+Inf\"} %d" pname h.h_count;
      line "%s_sum %s" pname (prom_float h.h_sum);
      line "%s_count %d" pname h.h_count)
    histograms;
  Buffer.contents buffer

(* A small exposition-format parser, enough to validate our own output
   (and any well-behaved exporter's): comment/blank lines skipped,
   sample lines are NAME[{k="v",...}] VALUE. Used by the round-trip
   property tests and `nfr_cli metrics` scrape validation. *)
type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

let parse_prometheus text =
  let parse_line lineno line =
    let n = String.length line in
    let fail msg = Error (Printf.sprintf "line %d: %s (%s)" lineno msg line) in
    let is_name_char start c =
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
      | '0' .. '9' -> not start
      | _ -> false
    in
    let rec name_end i = if i < n && is_name_char false line.[i] then name_end (i + 1) else i in
    if n = 0 || not (is_name_char true line.[0]) then fail "expected a metric name"
    else begin
      let name_stop = name_end 1 in
      let name = String.sub line 0 name_stop in
      let labels = ref [] in
      let pos = ref name_stop in
      let ok = ref None in
      if !pos < n && line.[!pos] = '{' then begin
        Stdlib.incr pos;
        let continue = ref (!pos < n && line.[!pos] <> '}') in
        while !ok = None && !continue do
          (* key *)
          let key_start = !pos in
          let key_stop = name_end !pos in
          if key_stop = key_start || key_stop >= n || line.[key_stop] <> '=' then
            ok := Some (fail "bad label key")
          else begin
            let key = String.sub line key_start (key_stop - key_start) in
            pos := key_stop + 1;
            if !pos >= n || line.[!pos] <> '"' then ok := Some (fail "expected opening quote")
            else begin
              Stdlib.incr pos;
              let value = Buffer.create 16 in
              let in_string = ref true in
              while !ok = None && !in_string do
                if !pos >= n then ok := Some (fail "unterminated label value")
                else
                  match line.[!pos] with
                  | '"' -> in_string := false; Stdlib.incr pos
                  | '\\' ->
                    if !pos + 1 >= n then ok := Some (fail "dangling escape")
                    else begin
                      (match line.[!pos + 1] with
                      | 'n' -> Buffer.add_char value '\n'
                      | '\\' -> Buffer.add_char value '\\'
                      | '"' -> Buffer.add_char value '"'
                      | c -> Buffer.add_char value c);
                      pos := !pos + 2
                    end
                  | c -> Buffer.add_char value c; Stdlib.incr pos
              done;
              if !ok = None then begin
                labels := (key, Buffer.contents value) :: !labels;
                if !pos < n && line.[!pos] = ',' then Stdlib.incr pos
                else if !pos < n && line.[!pos] = '}' then continue := false
                else ok := Some (fail "expected , or } after label")
              end
            end
          end
        done;
        if !ok = None then begin
          if !pos < n && line.[!pos] = '}' then Stdlib.incr pos
          else ok := Some (fail "expected }")
        end
      end;
      match !ok with
      | Some err -> err
      | None ->
        let rest = String.trim (String.sub line !pos (n - !pos)) in
        if rest = "" then fail "missing sample value"
        else
          let value =
            match rest with
            | "+Inf" | "Inf" -> Some Float.infinity
            | "-Inf" -> Some Float.neg_infinity
            | "NaN" -> Some Float.nan
            | _ -> float_of_string_opt rest
          in
          (match value with
          | None -> fail "unparseable sample value"
          | Some v ->
            Ok (Some { s_name = name; s_labels = List.rev !labels; s_value = v }))
    end
  in
  let lines = String.split_on_char '\n' text in
  let rec walk lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then walk (lineno + 1) acc rest
      else (
        match parse_line lineno trimmed with
        | Error _ as err -> err
        | Ok None -> walk (lineno + 1) acc rest
        | Ok (Some sample) -> walk (lineno + 1) (sample :: acc) rest)
  in
  walk 1 [] lines

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.labeled;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms
